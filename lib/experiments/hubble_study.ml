(** A week of Hubble-style monitoring: deriving H(d) from first principles.

    Table 2's load model rests on H(d), the daily rate of poisonable
    outages lasting at least d minutes, which the paper takes from the
    Hubble study [20] (anchored at d = 15) and extrapolates to d = 5 with
    the EC2 duration distribution. Here the whole pipeline runs live: a
    synthetic Internet, a Poisson process injecting silent failures with
    calibrated durations, a {!Measurement.Hubble} monitor detecting and
    classifying them, and H(d) read off the resulting incident ledger.
    The interesting check is relative: the decay of H(d) with d should
    match the ratios implied by Table 2 (H(5):H(15):H(60) ~ 2.85:1:0.42),
    since the absolute rate just scales with the injection rate. *)

open Workloads

type result = {
  days : float;
  injected : int;
  detected : int;
  partial : int;  (** Poisonable (some vantage points unaffected). *)
  h5 : float;
  h15 : float;
  h60 : float;
  ratio_5_over_15 : float;  (** Paper-implied: ~2.85. *)
  ratio_60_over_15 : float;  (** Paper-implied: ~0.42. *)
  probes : int;
}

let paper_ratio_5_over_15 = 783.0 /. 275.0
let paper_ratio_60_over_15 = 115.0 /. 275.0

(* Monitoring probes run between the central site, the vantage points and
   the targets only, so shard worlds announce just those ASes'
   infrastructure prefixes. *)
type shard_result = {
  s_injected : int;
  s_detected : int;
  s_partial : int;
  s_h5 : float;
  s_h15 : float;
  s_h60 : float;
  s_probes : int;
}

(* One shard: an independent world monitored for [days] simulated days
   with its own PRNG. Incident rates merge linearly across shards (each
   shard's H(d) is a per-day rate over its own window), so a week shards
   into independent days. *)
let run_shard ~ases ~days ~failures_per_day ~seed ~shard () =
  let bed =
    Scenarios.planetlab ~ases ~sites:14 ~target_count:20
      ~infrastructure:Scenarios.Sites ~seed ()
  in
  let rng = Prng.create ~seed:(seed + 6 + (977 * shard)) in
  let engine = bed.Scenarios.engine in
  let central = List.hd bed.Scenarios.vantage_points in
  let vps = List.tl bed.Scenarios.vantage_points in
  let hubble =
    Measurement.Hubble.create ~env:bed.Scenarios.probe ~engine ~central
      ~vantage_points:vps ~targets:bed.Scenarios.targets ()
  in
  (* Poisson failure arrivals; each failure sits on the live path between
     the central site and a random target, lasts a calibrated duration,
     and is removed on expiry. *)
  let horizon = days *. 86400.0 in
  let t0 = Sim.Engine.now engine in
  let injected = ref 0 in
  let rec schedule_next at =
    if at < t0 +. horizon then
      Sim.Engine.schedule engine ~at (fun () ->
          let target = Prng.pick_list rng bed.Scenarios.targets in
          let shape = Outage_gen.shape rng in
          (match Scenarios.Placement.on_path rng bed ~src:central ~dst:target ~shape () with
          | Some placed ->
              incr injected;
              Dataplane.Failure.add bed.Scenarios.failures
                placed.Scenarios.Placement.spec;
              Sim.Engine.schedule_after engine ~delay:shape.Outage_gen.duration (fun () ->
                  Dataplane.Failure.remove bed.Scenarios.failures
                    placed.Scenarios.Placement.spec)
          | None -> ());
          schedule_next
            (Sim.Engine.now engine
            +. Prng.Dist.exponential rng ~mean:(86400.0 /. failures_per_day)))
  in
  schedule_next (t0 +. Prng.Dist.exponential rng ~mean:(86400.0 /. failures_per_day));
  Sim.Engine.run ~until:(t0 +. horizon) engine;
  let incidents = Measurement.Hubble.incidents hubble in
  let detected = List.length incidents in
  let partial = List.length (List.filter Measurement.Hubble.is_poisonable incidents) in
  let h d = Measurement.Hubble.h_of_d hubble ~observed_days:days ~d_minutes:d in
  {
    s_injected = !injected;
    s_detected = detected;
    s_partial = partial;
    s_h5 = h 5.0;
    s_h15 = h 15.0;
    s_h60 = h 60.0;
    s_probes = Measurement.Hubble.probe_count hubble;
  }

let run ?(ases = 200) ?(days = 7.0) ?(failures_per_day = 18.0) ?(jobs = 1) ~seed () =
  (* Shard the observation window into roughly one-day independent
     simulations — a decomposition fixed by [days], never by [jobs]. *)
  let shards = max 1 (int_of_float (ceil days)) in
  let shard_days = days /. float_of_int shards in
  let results =
    Runner.run_trials ~jobs
      (List.init shards (fun shard ->
           run_shard ~ases ~days:shard_days ~failures_per_day ~seed ~shard))
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 results in
  (* Each shard's H(d) is a per-day rate over shard_days; equal windows
     merge as a plain mean. *)
  let mean_h f =
    List.fold_left (fun acc s -> acc +. f s) 0.0 results /. float_of_int shards
  in
  let h5 = mean_h (fun s -> s.s_h5)
  and h15 = mean_h (fun s -> s.s_h15)
  and h60 = mean_h (fun s -> s.s_h60) in
  let ratio a b = if b > 0.0 then a /. b else 0.0 in
  {
    days;
    injected = sum (fun s -> s.s_injected);
    detected = sum (fun s -> s.s_detected);
    partial = sum (fun s -> s.s_partial);
    h5;
    h15;
    h60;
    ratio_5_over_15 = ratio h5 h15;
    ratio_60_over_15 = ratio h60 h15;
    probes = sum (fun s -> s.s_probes);
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Hubble-style monitoring week: deriving H(d) (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "observation window (days)"; "-"; Stats.Table.cell_float ~decimals:0 r.days ];
      [ "failures injected"; "-"; Stats.Table.cell_int r.injected ];
      [ "incidents detected"; "-"; Stats.Table.cell_int r.detected ];
      [
        "partial (poisonable) share";
        "79% of EC2 outages were partial";
        (if r.detected = 0 then "-"
         else Stats.Table.cell_pct (float_of_int r.partial /. float_of_int r.detected));
      ];
      [ "H(5) per day"; "-"; Stats.Table.cell_float r.h5 ];
      [ "H(15) per day"; "(anchor: 253/day at Hubble scale)"; Stats.Table.cell_float r.h15 ];
      [ "H(60) per day"; "-"; Stats.Table.cell_float r.h60 ];
      [
        "H(5)/H(15)";
        Stats.Table.cell_float paper_ratio_5_over_15;
        Stats.Table.cell_float r.ratio_5_over_15;
      ];
      [
        "H(60)/H(15)";
        Stats.Table.cell_float paper_ratio_60_over_15;
        Stats.Table.cell_float r.ratio_60_over_15;
      ];
      [ "probe packets spent"; "-"; Stats.Table.cell_int r.probes ];
    ];
  [ t ]
