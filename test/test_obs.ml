(* lib/obs: the zero-cost-when-disabled guarantee, the JSONL envelope,
   cross-domain shard merging, and the golden jobs-invariance check on a
   traced fig6 run. *)

(* Alcotest runs every suite in one process and obs state is global, so
   each test starts and ends from a known-clean slate. *)
let reset_obs () =
  Obs.Trace.close ();
  Obs.Metrics.disable ();
  Obs.Metrics.reset ();
  Obs.Clock.clear ()

(* ---- disabled instruments must keep the engine hot loop cheap ---- *)

let test_disabled_cheap () =
  reset_obs ();
  let run_engine () =
    let e = Sim.Engine.create () in
    for i = 1 to 1000 do
      Sim.Engine.schedule e ~at:(float_of_int i) ignore
    done;
    Sim.Engine.run e
  in
  run_engine ();
  (* warmed; now measure. The bound leaves room for the engine's own
     event records but not for per-event kv lists or boxed snapshots —
     the regression this guards against. *)
  let w0 = Gc.minor_words () in
  run_engine ();
  let per_event = (Gc.minor_words () -. w0) /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "allocation per event bounded (%.1f words)" per_event)
    true (per_event < 64.)

(* ---- JSONL round-trip through the in-memory sink ---- *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

let contains s sub = find_sub s sub <> None

let test_trace_roundtrip () =
  reset_obs ();
  let buf = Buffer.create 1024 in
  Obs.Trace.enable_buffer buf;
  Alcotest.(check bool) "sink on" true (Obs.Trace.on ());
  Obs.Trace.event ~ts:1.5 ~span:"test.span"
    [
      ("i", Obs.Trace.Int 42);
      ("f", Obs.Trace.Float 2.5);
      ("b", Obs.Trace.Bool true);
      ("s", Obs.Trace.Str "a\"b\\c\nd");
    ];
  Obs.Trace.event ~ts:2.0 ~span:"other" [];
  Obs.Trace.close ();
  Alcotest.(check bool) "sink off after close" false (Obs.Trace.on ());
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> String.length l > 0)
  in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a JSON object" true
        (l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let l1 = List.nth lines 0 and l2 = List.nth lines 1 in
  Alcotest.(check bool) "ts rendered" true (contains l1 "\"ts\":1.500000");
  Alcotest.(check bool) "span rendered" true (contains l1 "\"span\":\"test.span\"");
  Alcotest.(check bool) "int kv" true (contains l1 "\"i\":42");
  Alcotest.(check bool) "float kv" true (contains l1 "\"f\":2.5");
  Alcotest.(check bool) "bool kv" true (contains l1 "\"b\":true");
  Alcotest.(check bool) "string kv escaped" true (contains l1 "\"a\\\"b\\\\c\\nd\"");
  Alcotest.(check bool) "empty kv object" true (contains l2 "\"kv\":{}")

(* ---- merging 4 domains' shards equals the sequential totals ---- *)

let test_merge_across_domains () =
  reset_obs ();
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "test.merge.c" in
  let g = Obs.Metrics.gauge "test.merge.g" in
  let h = Obs.Metrics.histogram ~bounds:[| 1.0; 10.0 |] "test.merge.h" in
  let work k () =
    for i = 1 to 1000 do
      Obs.Metrics.incr c;
      Obs.Metrics.observe_max g ((k * 1000) + i);
      Obs.Metrics.observe h (float_of_int (i mod 20))
    done
  in
  List.iter Domain.join (List.init 4 (fun k -> Domain.spawn (work (k + 1))));
  let par = Obs.Metrics.snapshot () in
  Obs.Metrics.reset ();
  List.iter (fun k -> work k ()) [ 1; 2; 3; 4 ];
  let seq = Obs.Metrics.snapshot () in
  Alcotest.(check int) "counter merged over 4 domains" 4000
    (Obs.Metrics.counter_value par "test.merge.c");
  Alcotest.(check int) "merged counter equals sequential"
    (Obs.Metrics.counter_value seq "test.merge.c")
    (Obs.Metrics.counter_value par "test.merge.c");
  Alcotest.(check int) "gauge is the max over domains" 5000
    (List.assoc "test.merge.g" par.Obs.Metrics.gauges);
  Alcotest.(check int) "merged gauge equals sequential"
    (List.assoc "test.merge.g" seq.Obs.Metrics.gauges)
    (List.assoc "test.merge.g" par.Obs.Metrics.gauges);
  let hist snap =
    List.find (fun r -> String.equal r.Obs.Metrics.hname "test.merge.h")
      snap.Obs.Metrics.hists
  in
  let hp = hist par and hs = hist seq in
  Alcotest.(check int) "hist total merged" 4000 hp.Obs.Metrics.total;
  Alcotest.(check (array int)) "hist buckets merged equal sequential"
    hs.Obs.Metrics.counts hp.Obs.Metrics.counts;
  reset_obs ()

(* ---- golden: traced fig6 event counts are --jobs invariant ---- *)

let span_of_line line =
  match find_sub line "\"span\":\"" with
  | None -> None
  | Some i ->
      let start = i + String.length "\"span\":\"" in
      let stop = String.index_from line start '"' in
      Some (String.sub line start (stop - start))

let span_counts buf =
  let tbl = Hashtbl.create 16 in
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.iter (fun l ->
         match span_of_line l with
         | Some s -> Hashtbl.replace tbl s (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s))
         | None -> ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run_fig6 jobs =
  reset_obs ();
  let buf = Buffer.create (1 lsl 16) in
  Obs.Metrics.enable ();
  Obs.Trace.enable_buffer buf;
  ignore (Experiments.Fig6_convergence.run ~ases:60 ~max_poisons:2 ~jobs ~seed:7 ());
  let snap = Obs.Metrics.snapshot () in
  Obs.Trace.close ();
  Obs.Metrics.disable ();
  (span_counts buf, snap)

let test_fig6_jobs_invariance () =
  let spans1, snap1 = run_fig6 1 in
  let spans2, snap2 = run_fig6 2 in
  let spans4, snap4 = run_fig6 4 in
  Alcotest.(check bool) "trace produced events" true (spans1 <> []);
  Alcotest.(check (list (pair string int))) "span counts: jobs 2 = jobs 1" spans1 spans2;
  Alcotest.(check (list (pair string int))) "span counts: jobs 4 = jobs 1" spans1 spans4;
  let delivered s = Obs.Metrics.counter_value s "bgp.delivered" in
  Alcotest.(check bool) "simulation delivered updates" true (delivered snap1 > 0);
  Alcotest.(check int) "bgp.deliver trace events = bgp.delivered counter"
    (delivered snap1)
    (List.assoc "bgp.deliver" spans1);
  Alcotest.(check int) "delivered counter: jobs 2 = jobs 1" (delivered snap1)
    (delivered snap2);
  Alcotest.(check int) "delivered counter: jobs 4 = jobs 1" (delivered snap1)
    (delivered snap4);
  reset_obs ()

let suite =
  [
    Alcotest.test_case "disabled instruments stay cheap" `Quick test_disabled_cheap;
    Alcotest.test_case "trace JSONL round-trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "metrics merge across 4 domains" `Quick test_merge_across_domains;
    Alcotest.test_case "fig6 trace counts are jobs-invariant" `Quick test_fig6_jobs_invariance;
  ]
