(* LIFEGUARD's core: isolation, decision, remediation, load model and the
   orchestrator state machine. *)

open Net
open Helpers

let infra = Dataplane.Forward.infrastructure_prefix
let addr w x = Dataplane.Forward.probe_address w.net x

(* A fig2 world where O runs LIFEGUARD: infrastructure + production +
   sentinel announced, atlas populated, E monitored. *)
let lifeguard_world () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan =
    Lifeguard.Remediate.plan ~sentinel ~origin:o ~production ()
  in
  Lifeguard.Remediate.announce_baseline w.net plan;
  converge w;
  let atlas = Measurement.Atlas.create () in
  Measurement.Atlas.refresh_all atlas w.probe ~vps:[ o ] ~dsts:[ e; d; f ] ~now:0.0;
  let responsiveness = Measurement.Responsiveness.create () in
  let ctx =
    {
      Lifeguard.Isolation.env = w.probe;
      atlas;
      responsiveness;
      vantage_points = [ o; d; c ];
      source_overrides = [ (o, Prefix.nth_address production 1) ];
    }
  in
  (w, plan, ctx, atlas)

(* The paper's target scenario: A silently drops traffic toward O's
   announced space; the E -> O reverse path dies while O -> E works. *)
let reverse_failure_spec = Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Node a)

let test_isolation_reverse_failure () =
  let w, _plan, ctx, _ = lifeguard_world () in
  Dataplane.Failure.add w.failures reverse_failure_spec;
  let d' = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  Alcotest.(check string) "direction" "reverse"
    (Lifeguard.Isolation.direction_to_string d'.Lifeguard.Isolation.direction);
  Alcotest.(check bool) "blames A" true
    (Lifeguard.Isolation.blamed_as d'.Lifeguard.Isolation.blame = Some a);
  Alcotest.(check bool) "used probes" true (d'.Lifeguard.Isolation.probes_used > 0);
  Alcotest.(check bool) "latency model positive" true (d'.Lifeguard.Isolation.elapsed > 0.0)

let test_isolation_no_failure () =
  let w, _plan, ctx, _ = lifeguard_world () in
  ignore w;
  let d' = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  Alcotest.(check string) "no failure" "no-failure"
    (Lifeguard.Isolation.direction_to_string d'.Lifeguard.Isolation.direction)

let test_isolation_forward_failure () =
  let w, _plan, ctx, _ = lifeguard_world () in
  (* A drops traffic toward E's space: O -> E forward dies, E -> O works. *)
  Dataplane.Failure.add w.failures
    (Dataplane.Failure.spec ~toward:(infra e) (Dataplane.Failure.Node a));
  let d' = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  Alcotest.(check string) "direction" "forward"
    (Lifeguard.Isolation.direction_to_string d'.Lifeguard.Isolation.direction);
  Alcotest.(check bool) "blames A" true
    (Lifeguard.Isolation.blamed_as d'.Lifeguard.Isolation.blame = Some a)

let test_isolation_destination_unreachable () =
  let w, _plan, ctx, _ = lifeguard_world () in
  (* E's only link is through A; kill everything through A toward anyone:
     no vantage point reaches E at all. *)
  Dataplane.Failure.add w.failures (Dataplane.Failure.spec (Dataplane.Failure.Node e));
  let d' = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  Alcotest.(check string) "destination unreachable" "destination-unreachable"
    (Lifeguard.Isolation.direction_to_string d'.Lifeguard.Isolation.direction)

let test_decide_gates () =
  let w, _plan, ctx, _ = lifeguard_world () in
  Dataplane.Failure.add w.failures reverse_failure_spec;
  let diagnosis = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  let config = Lifeguard.Decide.default_config in
  (* Too young. *)
  (match Lifeguard.Decide.decide config w.graph ~origin:o ~diagnosis ~outage_age:60.0 with
  | Lifeguard.Decide.Wait _ -> ()
  | v -> Alcotest.failf "expected Wait, got %a" Lifeguard.Decide.pp_verdict v);
  (* Old enough: poison A. *)
  (match Lifeguard.Decide.decide config w.graph ~origin:o ~diagnosis ~outage_age:400.0 with
  | Lifeguard.Decide.Poison target -> Alcotest.(check int) "poison A" 30 (Asn.to_int target)
  | v -> Alcotest.failf "expected Poison, got %a" Lifeguard.Decide.pp_verdict v);
  (* Forward failures are not poisoned. *)
  let forward_diag =
    { diagnosis with Lifeguard.Isolation.direction = Lifeguard.Isolation.Forward_failure }
  in
  (match Lifeguard.Decide.decide config w.graph ~origin:o ~diagnosis:forward_diag ~outage_age:400.0 with
  | Lifeguard.Decide.Hopeless _ -> ()
  | v -> Alcotest.failf "expected Hopeless, got %a" Lifeguard.Decide.pp_verdict v);
  (* No alternate path: pretend B (O's only provider) is to blame. *)
  let captive_diag =
    { diagnosis with Lifeguard.Isolation.blame = Lifeguard.Isolation.Blamed_as b }
  in
  match Lifeguard.Decide.decide config w.graph ~origin:o ~diagnosis:captive_diag ~outage_age:400.0 with
  | Lifeguard.Decide.Hopeless _ -> ()
  | v -> Alcotest.failf "expected Hopeless (no alternate), got %a" Lifeguard.Decide.pp_verdict v

let test_alternate_path_exists () =
  let w, _, _, _ = lifeguard_world () in
  Alcotest.(check bool) "E can avoid A" true
    (Lifeguard.Decide.alternate_path_exists w.graph ~src:e ~origin:o ~avoid:a);
  Alcotest.(check bool) "F cannot avoid A" false
    (Lifeguard.Decide.alternate_path_exists w.graph ~src:f ~origin:o ~avoid:a);
  Alcotest.(check bool) "nobody avoids B (sole provider)" false
    (Lifeguard.Decide.alternate_path_exists w.graph ~src:e ~origin:o ~avoid:b)

let test_plan_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "sentinel must cover production" true
    (raises (fun () ->
         Lifeguard.Remediate.plan ~sentinel:(prefix "198.51.100.0/23") ~origin:o ~production ()));
  Alcotest.(check bool) "sentinel must be less specific" true
    (raises (fun () -> Lifeguard.Remediate.plan ~sentinel:production ~origin:o ~production ()));
  Alcotest.(check bool) "prepend >= 1" true
    (raises (fun () -> Lifeguard.Remediate.plan ~prepend_copies:0 ~origin:o ~production ()))

let test_sentinel_unused_address () =
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  match Lifeguard.Remediate.sentinel_unused_address plan with
  | Some ip ->
      Alcotest.(check bool) "inside sentinel" true (Prefix.mem ip sentinel);
      Alcotest.(check bool) "outside production" false (Prefix.mem ip production)
  | None -> Alcotest.fail "expected an unused address"

let test_remediation_cycle () =
  let w, plan, _, _ = lifeguard_world () in
  (* Baseline: everyone sees O-O-O. *)
  (match Bgp.Network.best_route w.net e production with
  | Some entry ->
      Alcotest.(check int) "baseline length at E" 5
        (Bgp.As_path.length entry.Bgp.Route.ann.Bgp.Route.path)
  | None -> Alcotest.fail "no baseline at E");
  Lifeguard.Remediate.poison w.net plan ~target:a;
  converge w;
  Alcotest.(check bool) "A cut off from production" true
    (Bgp.Network.best_route w.net a production = None);
  check_path "E rerouted via D" [ 50; 40; 20; 10; 30; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production));
  Alcotest.(check bool) "A keeps the sentinel" true
    (Bgp.Network.best_route w.net a sentinel <> None);
  Lifeguard.Remediate.unpoison w.net plan;
  converge w;
  check_path "E back on the short path" [ 30; 20; 10; 10; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production))

let test_selective_poison_remediation () =
  (* O dual-homed: poison A via B only; A should keep the unpoisoned
     route heard through C. *)
  let g = Topology.As_graph.create () in
  let open Topology in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3; 9 ];
  let o' = asn 1 and b' = asn 2 and c' = asn 3 and a' = asn 9 in
  As_graph.add_link g ~a:o' ~b:b' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:o' ~b:c' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b' ~b:a' ~rel:Relationship.Provider;
  As_graph.add_link g ~a:c' ~b:a' ~rel:Relationship.Provider;
  let w = world_of_graph g in
  let plan = Lifeguard.Remediate.plan ~origin:o' ~production () in
  Lifeguard.Remediate.announce_baseline w.net plan;
  converge w;
  Lifeguard.Remediate.selective_poison w.net plan ~target:a' ~poisoned_via:[ b' ];
  converge w;
  (match Bgp.Network.best_route w.net a' production with
  | Some entry ->
      Alcotest.(check int) "A ingress forced to C" 3
        (Asn.to_int entry.Bgp.Route.neighbor)
  | None -> Alcotest.fail "A lost the route entirely");
  Lifeguard.Remediate.unpoison w.net plan;
  converge w

let test_is_recovered () =
  let w, plan, _, _ = lifeguard_world () in
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Lifeguard.Remediate.poison w.net plan ~target:a;
  converge w;
  Alcotest.(check bool) "not recovered while A is broken" false
    (Lifeguard.Remediate.is_recovered w.probe plan ~through:a ~targets:[ e ]);
  Dataplane.Failure.remove w.failures reverse_failure_spec;
  Alcotest.(check bool) "recovered after heal" true
    (Lifeguard.Remediate.is_recovered w.probe plan ~through:a ~targets:[ e ])

let test_load_model () =
  let durations = Workloads.Outage_gen.durations ~seed:42 ~n:10308 () in
  let params = Lifeguard.Load_model.default_params in
  let anchor =
    Lifeguard.Load_model.daily_path_changes params ~durations ~i:0.01 ~t:1.0 ~d_minutes:15.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "anchor ~275 (got %.0f)" anchor)
    true
    (anchor > 250.0 && anchor < 300.0);
  (* Monotonicity: more deployment, more load; longer delay, less load. *)
  let at ~i ~t ~d = Lifeguard.Load_model.daily_path_changes params ~durations ~i ~t ~d_minutes:d in
  Alcotest.(check bool) "increasing in I" true (at ~i:0.5 ~t:1.0 ~d:15.0 > at ~i:0.1 ~t:1.0 ~d:15.0);
  Alcotest.(check bool) "increasing in T" true (at ~i:0.1 ~t:1.0 ~d:15.0 > at ~i:0.1 ~t:0.5 ~d:15.0);
  Alcotest.(check bool) "decreasing in d" true (at ~i:0.1 ~t:1.0 ~d:5.0 > at ~i:0.1 ~t:1.0 ~d:60.0);
  Alcotest.(check int) "grid size" 18 (List.length (Lifeguard.Load_model.table2 params ~durations))

let test_residual () =
  let durations = [| 100.0; 200.0; 400.0; 800.0 |] in
  (match Lifeguard.Decide.Residual.at ~durations ~elapsed:150.0 with
  | Some s ->
      Alcotest.(check int) "survivors" 3 s.Lifeguard.Decide.Residual.count;
      Alcotest.(check (float 0.001)) "median residual" 250.0 s.Lifeguard.Decide.Residual.median
  | None -> Alcotest.fail "expected stats");
  Alcotest.(check bool) "nobody past the max" true
    (Lifeguard.Decide.Residual.at ~durations ~elapsed:900.0 = None);
  Alcotest.(check (float 0.001)) "survival fraction" (2.0 /. 3.0)
    (Lifeguard.Decide.Residual.survival_fraction ~durations ~elapsed:150.0 ~horizon:250.0)

let test_orchestrator_end_to_end () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide =
        { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 200.0 };
    }
  in
  let orc =
    Lifeguard.Orchestrator.create ~config ~env:w.probe ~atlas ~responsiveness ~plan
      ~vantage_points:[ d; c ] ()
  in
  converge w;
  Lifeguard.Orchestrator.watch orc ~targets:[ e ];
  Sim.Engine.run ~until:600.0 w.engine;
  Alcotest.(check bool) "idle while healthy" true (Lifeguard.Orchestrator.state orc = Lifeguard.Orchestrator.Idle);
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Sim.Engine.run ~until:2400.0 w.engine;
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned target -> Alcotest.(check int) "poisoned A" 30 (Asn.to_int target)
  | _ -> Alcotest.fail "expected poisoned state");
  Alcotest.(check bool) "E's connectivity to production repaired" true
    (Dataplane.Forward.delivers w.net w.failures ~src:e ~dst:(Prefix.nth_address production 9));
  (* Heal; the sentinel checks should unpoison. *)
  Dataplane.Failure.remove w.failures reverse_failure_spec;
  Sim.Engine.run ~until:3600.0 w.engine;
  Alcotest.(check bool) "back to idle" true (Lifeguard.Orchestrator.state orc = Lifeguard.Orchestrator.Idle);
  let events = Lifeguard.Orchestrator.events orc in
  let has f = List.exists (fun (_, ev) -> f ev) events in
  Alcotest.(check bool) "outage event" true
    (has (function Lifeguard.Orchestrator.Outage_detected _ -> true | _ -> false));
  Alcotest.(check bool) "diagnosis event" true
    (has (function Lifeguard.Orchestrator.Diagnosed _ -> true | _ -> false));
  Alcotest.(check bool) "poison event" true
    (has (function Lifeguard.Orchestrator.Poison_announced _ -> true | _ -> false));
  Alcotest.(check bool) "unpoison event" true
    (has (function Lifeguard.Orchestrator.Unpoisoned -> true | _ -> false));
  ignore (addr w e)

(* Two overlapping outages on disjoint prefixes: one reverse failure at A
   breaks both monitored targets at once. E (dual-homed) gets the poison;
   F (captive behind A, invisible to the vantage points valley-free) runs
   its own concurrent pipeline and stands down as unreachable. The
   unpoison is paced: even though the sentinel sees the repair early, the
   withdrawal waits out [announce_spacing] from the poison announcement. *)
let test_orchestrator_reentrancy () =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide =
        { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 200.0 };
      announce_spacing = 3600.0;
    }
  in
  let orc =
    Lifeguard.Orchestrator.create ~config ~env:w.probe ~atlas ~responsiveness ~plan
      ~vantage_points:[ d; c ] ()
  in
  converge w;
  Lifeguard.Orchestrator.watch orc ~targets:[ e; f ];
  Sim.Engine.run ~until:600.0 w.engine;
  Dataplane.Failure.add w.failures reverse_failure_spec;
  (* Shortly after detection both targets must be mid-pipeline at once. *)
  Sim.Engine.run ~until:730.0 w.engine;
  Alcotest.(check int) "two concurrent pipelines" 2
    (Lifeguard.Orchestrator.active_pipelines orc);
  Sim.Engine.run ~until:2000.0 w.engine;
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned target ->
      Alcotest.(check int) "poisoned A" 30 (Asn.to_int target)
  | _ -> Alcotest.fail "expected poisoned state");
  let events () = Lifeguard.Orchestrator.events orc in
  let count f = List.length (List.filter (fun (_, ev) -> f ev) (events ())) in
  Alcotest.(check int) "both targets detected" 2
    (count (function Lifeguard.Orchestrator.Outage_detected _ -> true | _ -> false));
  Alcotest.(check int) "one poison for the shared prefix" 1
    (count (function Lifeguard.Orchestrator.Poison_announced _ -> true | _ -> false));
  (* Heal. The sentinel sees the repair quickly, but the withdrawal must
     wait out the damping margin from the poison announcement. *)
  Dataplane.Failure.remove w.failures reverse_failure_spec;
  Sim.Engine.run ~until:4000.0 w.engine;
  Alcotest.(check int) "repair seen" 1
    (count (function Lifeguard.Orchestrator.Recovery_detected _ -> true | _ -> false));
  Alcotest.(check int) "unpoison still paced" 0
    (count (function Lifeguard.Orchestrator.Unpoisoned -> true | _ -> false));
  Sim.Engine.run ~until:7200.0 w.engine;
  Alcotest.(check int) "unpoisoned after the spacing" 1
    (count (function Lifeguard.Orchestrator.Unpoisoned -> true | _ -> false));
  Alcotest.(check bool) "idle again" true
    (Lifeguard.Orchestrator.state orc = Lifeguard.Orchestrator.Idle);
  Alcotest.(check int) "no pipelines left" 0 (Lifeguard.Orchestrator.active_pipelines orc);
  (* Pacing is measurable in the log: poison -> unpoison >= spacing. *)
  let time_of f =
    match List.find_opt (fun (_, ev) -> f ev) (events ()) with
    | Some (ts, _) -> ts
    | None -> Alcotest.fail "expected event"
  in
  let poison_at =
    time_of (function Lifeguard.Orchestrator.Poison_announced _ -> true | _ -> false)
  in
  let unpoison_at = time_of (function Lifeguard.Orchestrator.Unpoisoned -> true | _ -> false) in
  Alcotest.(check bool) "damping margin respected" true (unpoison_at -. poison_at >= 3600.0);
  (* Terminal accounting: E repaired, F stood down (captive behind A). *)
  let outcomes = Lifeguard.Orchestrator.outcomes orc in
  let outcome_of target =
    List.find_map
      (fun (_, t', oc) -> if Asn.equal t' target then Some oc else None)
      outcomes
  in
  (match outcome_of e with
  | Some Lifeguard.Orchestrator.Repaired -> ()
  | _ -> Alcotest.fail "expected E repaired");
  (match outcome_of f with
  | Some (Lifeguard.Orchestrator.Stood_down _) -> ()
  | _ -> Alcotest.fail "expected F stood down");
  check_path "E back on the short path" [ 30; 20; 10; 10; 10 ]
    (path_of_best (Bgp.Network.best_route w.net e production))

(* Regression for a dropped remediation: two pipelines blame *different*
   ASes and both verdicts land inside the announce-spacing window left by
   a previous unpoison, so both poisons queue and two delayed pumps fire
   back to back. The first pump announces its poison; the second must
   leave the other target's remediation queued — not dequeue and discard
   it — so every outage still reaches a terminal outcome. Extends fig. 2
   with A2/G mirroring A/E: G prefers the short path through A2 and falls
   back to G-D-C-B-O when A2 is poisoned. *)
let a2 = asn 80
let g = asn 90

let fig2_plus_graph () =
  let gr = fig2_graph () in
  Topology.As_graph.add_as gr ~tier:2 a2;
  Topology.As_graph.add_as gr ~tier:4 g;
  Topology.As_graph.add_link gr ~a:b ~b:a2 ~rel:Topology.Relationship.Provider;
  Topology.As_graph.add_link gr ~a:g ~b:a2 ~rel:Topology.Relationship.Provider;
  Topology.As_graph.add_link gr ~a:g ~b:d ~rel:Topology.Relationship.Provider;
  gr

let test_orchestrator_queue_not_dropped () =
  let w = world_of_graph (fig2_plus_graph ()) in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide =
        { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 200.0 };
      announce_spacing = 3600.0;
    }
  in
  let orc =
    Lifeguard.Orchestrator.create ~config ~env:w.probe ~atlas ~responsiveness ~plan
      ~vantage_points:[ d; c ] ()
  in
  converge w;
  Lifeguard.Orchestrator.watch orc ~targets:[ e; g ];
  let fail_a = reverse_failure_spec in
  let fail_a2 = Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Node a2) in
  (* Round 1: a single outage, poisoned and repaired, so last_announce is
     recent when round 2's verdicts arrive. *)
  Sim.Engine.run ~until:600.0 w.engine;
  Dataplane.Failure.add w.failures fail_a;
  Sim.Engine.run ~until:2500.0 w.engine;
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned target ->
      Alcotest.(check int) "round 1 poisons A" 30 (Asn.to_int target)
  | _ -> Alcotest.fail "expected poisoned state");
  Dataplane.Failure.remove w.failures fail_a;
  Sim.Engine.run ~until:6000.0 w.engine;
  Alcotest.(check bool) "idle between rounds" true
    (Lifeguard.Orchestrator.state orc = Lifeguard.Orchestrator.Idle);
  (* Round 2: two concurrent outages blamed on different ASes. Both
     verdicts arrive while the prefix is free but inside the spacing
     window from round 1's unpoison, so both remediations queue. *)
  Dataplane.Failure.add w.failures fail_a;
  Dataplane.Failure.add w.failures fail_a2;
  Sim.Engine.run ~until:9500.0 w.engine;
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned _ -> ()
  | _ -> Alcotest.fail "expected one round-2 poison announced");
  Alcotest.(check int) "the other remediation is still queued" 1
    (Lifeguard.Orchestrator.queued_poisons orc);
  Alcotest.(check int) "no pipeline left open" 0 (Lifeguard.Orchestrator.active_pipelines orc);
  (* Heal everything: the announced poison unpoisons after the spacing;
     the queued remediation is taken only at send time and stands down as
     already resolved — it must not have been silently discarded. *)
  Dataplane.Failure.remove w.failures fail_a;
  Dataplane.Failure.remove w.failures fail_a2;
  Sim.Engine.run ~until:18000.0 w.engine;
  Alcotest.(check bool) "idle at the end" true
    (Lifeguard.Orchestrator.state orc = Lifeguard.Orchestrator.Idle);
  Alcotest.(check int) "queue drained" 0 (Lifeguard.Orchestrator.queued_poisons orc);
  let events = Lifeguard.Orchestrator.events orc in
  let count f = List.length (List.filter (fun (_, ev) -> f ev) events) in
  Alcotest.(check int) "three detections, none duplicated" 3
    (count (function Lifeguard.Orchestrator.Outage_detected _ -> true | _ -> false));
  Alcotest.(check int) "two poisons announced" 2
    (count (function Lifeguard.Orchestrator.Poison_announced _ -> true | _ -> false));
  Alcotest.(check int) "two withdrawals" 2
    (count (function Lifeguard.Orchestrator.Unpoisoned -> true | _ -> false));
  let outcomes = Lifeguard.Orchestrator.outcomes orc in
  Alcotest.(check int) "every outage reached a terminal outcome" 3 (List.length outcomes);
  let repaired =
    List.filter
      (fun (_, _, oc) ->
        match oc with Lifeguard.Orchestrator.Repaired -> true | _ -> false)
      outcomes
  in
  Alcotest.(check int) "round 1 and the announced round-2 poison repaired" 2
    (List.length repaired)

(* Watchdog regressions. All three run the fig. 2 world with the A
   reverse failure; they differ in what the control plane does to the
   poison after it is announced. *)
let watchdog_world ~announce_spacing ~poison_deadline =
  let w = fig2_world () in
  announce_all_infrastructure w;
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  let atlas = Measurement.Atlas.create () in
  let responsiveness = Measurement.Responsiveness.create () in
  let config =
    {
      Lifeguard.Orchestrator.default_config with
      Lifeguard.Orchestrator.decide =
        { Lifeguard.Decide.default_config with Lifeguard.Decide.min_outage_age = 200.0 };
      announce_spacing;
      poison_deadline;
    }
  in
  let orc =
    Lifeguard.Orchestrator.create ~config ~env:w.probe ~atlas ~responsiveness ~plan
      ~vantage_points:[ d; c ] ()
  in
  converge w;
  Lifeguard.Orchestrator.watch orc ~targets:[ e ];
  (w, orc)

let count_events orc f =
  List.length (List.filter (fun (_, ev) -> f ev) (Lifeguard.Orchestrator.events orc))

(* The poison announcement is lost on the wire (every O -> B update
   dropped), so the vantage feeds keep showing the stale baseline. Once
   the wire heals, the watchdog must re-announce idempotently — exactly
   once, paced by announce_spacing — and the repair must then complete
   normally. *)
let test_watchdog_reannounce_after_lost_poison () =
  let w, orc = watchdog_world ~announce_spacing:1800.0 ~poison_deadline:7200.0 in
  Sim.Engine.run ~until:600.0 w.engine;
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Bgp.Network.set_link_faults w.net
    (Some (fun ~from ~to_ -> if Asn.equal from o && Asn.equal to_ b then `Drop else `Deliver));
  Sim.Engine.run ~until:2400.0 w.engine;
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned target -> Alcotest.(check int) "poisoned A" 30 (Asn.to_int target)
  | _ -> Alcotest.fail "expected poisoned state");
  Alcotest.(check int) "poison not yet confirmed (lost on the wire)" 0
    (count_events orc
       (function Lifeguard.Orchestrator.Poison_confirmed _ -> true | _ -> false));
  (* Wire heals; the stale vantage views must now trigger exactly one
     idempotent re-announcement once the spacing window opens. *)
  Bgp.Network.set_link_faults w.net None;
  Sim.Engine.run ~until:6000.0 w.engine;
  Alcotest.(check int) "re-announced exactly once" 1 (Lifeguard.Orchestrator.reannounce_count orc);
  Alcotest.(check int) "one re-announce event" 1
    (count_events orc
       (function Lifeguard.Orchestrator.Poison_reannounced _ -> true | _ -> false));
  Alcotest.(check int) "confirmed after the re-announce" 1
    (count_events orc
       (function Lifeguard.Orchestrator.Poison_confirmed _ -> true | _ -> false));
  Alcotest.(check int) "initial announcement not duplicated" 1
    (count_events orc
       (function Lifeguard.Orchestrator.Poison_announced _ -> true | _ -> false));
  (* Heal the outage: the repair completes through the normal path. *)
  Dataplane.Failure.remove w.failures reverse_failure_spec;
  Sim.Engine.run ~until:12000.0 w.engine;
  Alcotest.(check bool) "idle at the end" true
    (Lifeguard.Orchestrator.state orc = Lifeguard.Orchestrator.Idle);
  Alcotest.(check int) "no rollback" 0 (Lifeguard.Orchestrator.rollback_count orc);
  Alcotest.(check bool) "breaker never opened" false
    (Lifeguard.Orchestrator.breaker_open orc ~target:a);
  (match Lifeguard.Orchestrator.outcomes orc with
  | [ (_, t', Lifeguard.Orchestrator.Repaired) ] ->
      Alcotest.(check int) "E repaired" 60 (Asn.to_int t')
  | _ -> Alcotest.fail "expected exactly one Repaired outcome")

(* The wire never heals: the poison cannot propagate, so the watchdog
   must roll it back at the deadline, record a give-up, and open the
   circuit breaker — and the next detection of the same outage must be
   refused by the breaker instead of re-poisoning forever. *)
let test_watchdog_rollback_and_breaker () =
  let w, orc = watchdog_world ~announce_spacing:1800.0 ~poison_deadline:3600.0 in
  Sim.Engine.run ~until:600.0 w.engine;
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Bgp.Network.set_link_faults w.net
    (Some (fun ~from ~to_ -> if Asn.equal from o && Asn.equal to_ b then `Drop else `Deliver));
  Sim.Engine.run ~until:9000.0 w.engine;
  Alcotest.(check int) "one rollback" 1 (Lifeguard.Orchestrator.rollback_count orc);
  Alcotest.(check int) "one rollback event" 1
    (count_events orc
       (function Lifeguard.Orchestrator.Poison_rolled_back _ -> true | _ -> false));
  Alcotest.(check bool) "watchdog retried the announcement first" true
    (Lifeguard.Orchestrator.reannounce_count orc >= 1);
  Alcotest.(check int) "the failed poison was withdrawn" 1
    (count_events orc (function Lifeguard.Orchestrator.Unpoisoned -> true | _ -> false));
  Alcotest.(check bool) "breaker open for A" true
    (Lifeguard.Orchestrator.breaker_open orc ~target:a);
  Alcotest.(check bool) "no poison left standing" true
    (Lifeguard.Orchestrator.state orc <> Lifeguard.Orchestrator.Poisoned a);
  Alcotest.(check int) "nothing queued" 0 (Lifeguard.Orchestrator.queued_poisons orc);
  (* The same outage comes back (monitors are edge-triggered, so let it
     recover first): the new pipeline's poison verdict must now be
     refused by the open breaker instead of re-poisoning A. *)
  Dataplane.Failure.remove w.failures reverse_failure_spec;
  Sim.Engine.run ~until:9400.0 w.engine;
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Sim.Engine.run ~until:13000.0 w.engine;
  Alcotest.(check bool) "re-poisoning refused by the breaker" true
    (Lifeguard.Orchestrator.breaker_trip_count orc >= 1);
  Alcotest.(check bool) "breaker events logged" true
    (count_events orc (function Lifeguard.Orchestrator.Breaker_open _ -> true | _ -> false) >= 1);
  Alcotest.(check int) "still just the one rollback" 1 (Lifeguard.Orchestrator.rollback_count orc);
  let outcomes = Lifeguard.Orchestrator.outcomes orc in
  Alcotest.(check bool) "terminal outcomes recorded" true (List.length outcomes >= 1);
  List.iter
    (fun (_, _, oc) ->
      match oc with
      | Lifeguard.Orchestrator.Gave_up_on _ -> ()
      | oc -> Alcotest.failf "expected give-ups only, got %a" Lifeguard.Orchestrator.pp_outcome oc)
    outcomes

(* A session reset while the poison stands: the flap flushes B's RIBs,
   but re-establishment re-syncs the adj-RIB-out, so the poison comes
   back on its own — the watchdog must NOT burn an announcement on it. *)
let test_watchdog_session_reset_resync () =
  let w, orc = watchdog_world ~announce_spacing:1800.0 ~poison_deadline:3600.0 in
  Sim.Engine.run ~until:600.0 w.engine;
  Dataplane.Failure.add w.failures reverse_failure_spec;
  Sim.Engine.run ~until:2400.0 w.engine;
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned _ -> ()
  | _ -> Alcotest.fail "expected poisoned state");
  Alcotest.(check int) "confirmed before the flap" 1
    (count_events orc
       (function Lifeguard.Orchestrator.Poison_confirmed _ -> true | _ -> false));
  (* Flap the O-B session: RIB flush both sides, immediate re-sync. *)
  Bgp.Network.fail_link w.net ~a:o ~b;
  Bgp.Network.restore_link w.net ~a:o ~b;
  Sim.Engine.run ~until:4800.0 w.engine;
  Alcotest.(check int) "no watchdog re-announce needed" 0
    (Lifeguard.Orchestrator.reannounce_count orc);
  (match Lifeguard.Orchestrator.state orc with
  | Lifeguard.Orchestrator.Poisoned _ -> ()
  | _ -> Alcotest.fail "poison must survive the session reset");
  Dataplane.Failure.remove w.failures reverse_failure_spec;
  Sim.Engine.run ~until:9000.0 w.engine;
  Alcotest.(check bool) "idle at the end" true
    (Lifeguard.Orchestrator.state orc = Lifeguard.Orchestrator.Idle);
  Alcotest.(check int) "no rollback" 0 (Lifeguard.Orchestrator.rollback_count orc);
  (match Lifeguard.Orchestrator.outcomes orc with
  | [ (_, _, Lifeguard.Orchestrator.Repaired) ] -> ()
  | _ -> Alcotest.fail "expected exactly one Repaired outcome")

let suite =
  [
    Alcotest.test_case "isolation: reverse failure" `Quick test_isolation_reverse_failure;
    Alcotest.test_case "isolation: no failure" `Quick test_isolation_no_failure;
    Alcotest.test_case "isolation: forward failure" `Quick test_isolation_forward_failure;
    Alcotest.test_case "isolation: destination unreachable" `Quick
      test_isolation_destination_unreachable;
    Alcotest.test_case "decision gates" `Quick test_decide_gates;
    Alcotest.test_case "alternate path check" `Quick test_alternate_path_exists;
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "sentinel unused address" `Quick test_sentinel_unused_address;
    Alcotest.test_case "remediation cycle" `Quick test_remediation_cycle;
    Alcotest.test_case "selective poison remediation" `Quick test_selective_poison_remediation;
    Alcotest.test_case "recovery detection" `Quick test_is_recovered;
    Alcotest.test_case "load model" `Quick test_load_model;
    Alcotest.test_case "orchestrator re-entrancy + paced unpoison" `Quick
      test_orchestrator_reentrancy;
    Alcotest.test_case "orchestrator queued poisons are never dropped" `Quick
      test_orchestrator_queue_not_dropped;
    Alcotest.test_case "residual durations" `Quick test_residual;
    Alcotest.test_case "orchestrator end-to-end" `Quick test_orchestrator_end_to_end;
    Alcotest.test_case "watchdog re-announces a lost poison exactly once" `Quick
      test_watchdog_reannounce_after_lost_poison;
    Alcotest.test_case "watchdog rollback + circuit breaker" `Quick
      test_watchdog_rollback_and_breaker;
    Alcotest.test_case "session reset re-syncs the poison" `Quick
      test_watchdog_session_reset_resync;
  ]
