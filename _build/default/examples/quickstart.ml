(* Quickstart: the whole LIFEGUARD story on a seven-AS topology.

   Build an Internet, announce a production prefix with the prepended
   baseline, break a transit AS silently, locate the failure with
   LIFEGUARD's isolation pipeline, poison the culprit, and watch the
   sentinel detect the repair.

   Run with: dune exec examples/quickstart.exe *)

open Net

let asn = Asn.of_int
let section title = Printf.printf "\n--- %s ---\n" title

let () =
  (* A miniature Internet, the paper's Fig. 2: origin O buys transit from
     B; E can reach O through A (short) or through D-C (long); F is
     single-homed behind A. *)
  let open Topology in
  let g = As_graph.create () in
  let o = asn 64500
  and b = asn 20
  and a = asn 30
  and c = asn 40
  and d = asn 50
  and e = asn 60
  and f = asn 70 in
  List.iter (fun x -> As_graph.add_as g x) [ o; b; a; c; d; e; f ];
  As_graph.add_link g ~a:o ~b ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b ~b:a ~rel:Relationship.Provider;
  As_graph.add_link g ~a:b ~b:c ~rel:Relationship.Provider;
  As_graph.add_link g ~a:c ~b:d ~rel:Relationship.Provider;
  As_graph.add_link g ~a:e ~b:d ~rel:Relationship.Provider;
  As_graph.add_link g ~a:e ~b:a ~rel:Relationship.Provider;
  As_graph.add_link g ~a:f ~b:a ~rel:Relationship.Provider;

  (* Wire the control plane to a discrete-event engine and converge. *)
  let engine = Sim.Engine.create () in
  let net = Bgp.Network.create ~engine ~graph:g ~mrai:5.0 () in
  let failures = Dataplane.Failure.create () in
  let probe = Dataplane.Probe.env net failures in
  Dataplane.Forward.announce_infrastructure net;
  Bgp.Network.run_until_quiet net;

  (* O's address space: a production /24 under a /23 sentinel. *)
  let production = Prefix.of_string_exn "203.0.113.0/24" in
  let sentinel = Prefix.of_string_exn "203.0.112.0/23" in
  let plan = Lifeguard.Remediate.plan ~sentinel ~origin:o ~production () in
  Lifeguard.Remediate.announce_baseline net plan;
  Bgp.Network.run_until_quiet net;

  let show_route who =
    match Bgp.Network.best_route net who production with
    | Some entry ->
        Printf.printf "  %s routes to %s via [%s]\n" (Asn.to_string who)
          (Prefix.to_string production)
          (Bgp.As_path.to_string entry.Bgp.Route.ann.Bgp.Route.path)
    | None -> Printf.printf "  %s has NO route to the production prefix\n" (Asn.to_string who)
  in
  section "steady state (note the O-O-O prepended baseline)";
  List.iter show_route [ e; f; d ];

  (* AS A develops a silent failure: it keeps announcing routes but drops
     every packet heading into O's address space. *)
  section "silent failure: A blackholes traffic toward O";
  let failure = Dataplane.Failure.spec ~toward:sentinel (Dataplane.Failure.Node a) in
  Dataplane.Failure.add failures failure;
  let o_src = Prefix.nth_address production 1 in
  let e_addr = Dataplane.Forward.probe_address net e in
  Printf.printf "  ping O -> E: %b (reply dies inside A)\n"
    (Dataplane.Probe.ping_from probe ~src:o ~src_ip:o_src ~dst:e_addr);

  (* Locate it: spoofed pings isolate the direction, the path atlas gives
     historical paths, and hop probing finds the reachability horizon. *)
  section "LIFEGUARD isolation";
  let atlas = Measurement.Atlas.create () in
  Measurement.Atlas.refresh_all atlas probe ~vps:[ o ] ~dsts:[ e; f; d ] ~now:0.0;
  let ctx =
    {
      Lifeguard.Isolation.env = probe;
      atlas;
      responsiveness = Measurement.Responsiveness.create ();
      vantage_points = [ o; d; c ];
      source_overrides = [ (o, o_src) ];
    }
  in
  let diagnosis = Lifeguard.Isolation.isolate ctx ~src:o ~dst:e in
  Format.printf "  %a@." Lifeguard.Isolation.pp_diagnosis diagnosis;

  (* Decide and repair: poison A so BGP's loop prevention steers everyone
     who has an alternative around it. *)
  section "remediation: poison the blamed AS";
  (match
     Lifeguard.Decide.decide Lifeguard.Decide.default_config g ~origin:o ~diagnosis
       ~outage_age:600.0
   with
  | Lifeguard.Decide.Poison target ->
      Format.printf "  verdict: poison %a@." Asn.pp target;
      Lifeguard.Remediate.poison net plan ~target;
      Bgp.Network.run_until_quiet net
  | v -> Format.printf "  verdict: %a@." Lifeguard.Decide.pp_verdict v);
  List.iter show_route [ e; f; d ];
  Printf.printf "  ping O -> E now: %b (E rerouted onto D-C-B)\n"
    (Dataplane.Probe.ping_from probe ~src:o ~src_ip:o_src ~dst:e_addr);
  (* Captive F lost the poisoned more-specific but keeps the covering
     sentinel as a backup route (delivery still depends on A's data plane
     actually healing). *)
  (match Bgp.Network.fib_lookup net f (Prefix.nth_address production 9) with
  | Some (p, _) ->
      Printf.printf "  captive F falls back to the sentinel route %s\n" (Prefix.to_string p)
  | None -> Printf.printf "  captive F has no covering route at all!\n");

  (* A fixes itself; sentinel probes notice and LIFEGUARD unpoisons. *)
  section "repair detection via the sentinel";
  Printf.printf "  recovered while A is broken? %b\n"
    (Lifeguard.Remediate.is_recovered probe plan ~through:a ~targets:[ e ]);
  Dataplane.Failure.remove failures failure;
  Printf.printf "  recovered after A heals?     %b\n"
    (Lifeguard.Remediate.is_recovered probe plan ~through:a ~targets:[ e ]);
  Lifeguard.Remediate.unpoison net plan;
  Bgp.Network.run_until_quiet net;
  section "back to normal";
  List.iter show_route [ e; f ]
