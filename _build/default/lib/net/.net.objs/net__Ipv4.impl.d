lib/net/ipv4.ml: Format Int32 Map Printf Set String
