open Net
open Topology

type record = { mutable successes : int; mutable failures : int; mutable last : float }

type t = {
  silent : (int, unit) Hashtbl.t;
  history : (int, record) Hashtbl.t;
  mutable observations : int;
}

(* Addresses are keyed as immediate ints, not boxed int32s, so lookups on
   the probe path stay allocation-free. *)
let address_key ip = Int32.to_int (Ipv4.to_int32 ip)

let create () = { silent = Hashtbl.create 64; history = Hashtbl.create 256; observations = 0 }
let configure_silent t ip = Hashtbl.replace t.silent (address_key ip) ()

let configure_silent_fraction t rng graph ~fraction =
  List.iter
    (fun asn ->
      Array.iter
        (fun r ->
          if Prng.bernoulli rng ~p:fraction then configure_silent t r.As_graph.address)
        (As_graph.routers graph asn))
    (As_graph.as_list graph)

let is_silent t ip = Hashtbl.mem t.silent (address_key ip)

let note t ip ~now success =
  t.observations <- t.observations + 1;
  let key = address_key ip in
  let r =
    match Hashtbl.find_opt t.history key with
    | Some r -> r
    | None ->
        let r = { successes = 0; failures = 0; last = now } in
        Hashtbl.replace t.history key r;
        r
  in
  if success then r.successes <- r.successes + 1 else r.failures <- r.failures + 1;
  r.last <- now

let ever_responded t ip =
  match Hashtbl.find_opt t.history (address_key ip) with
  | Some r -> r.successes > 0
  | None -> false

let expect_response t ip =
  if is_silent t ip then false
  else begin
    match Hashtbl.find_opt t.history (address_key ip) with
    | Some r -> r.successes > 0
    | None -> true
  end

let observation_count t = t.observations
