(** BGP AS paths, including the poisoning and prepending constructions at
    the heart of LIFEGUARD's remediation.

    A path lists ASes nearest-first: the head is the neighbor that
    announced the route and the last element is the origin. BGP's loop
    prevention — an AS rejects any path already containing its own number —
    is what poisoning exploits: the origin [O] announces [O-A-O] so that
    [A] drops the route and other ASes route around it. *)

open Net

type t = Asn.t list
(** Nearest AS first, origin last. *)

val empty : t
val origin : t -> Asn.t option
(** The last AS (the originator), if the path is non-empty. *)

val first_hop : t -> Asn.t option
(** The head of the path — the next-hop AS from the receiver's view. *)

val length : t -> int
(** Plain hop count, counting duplicates (so prepending lengthens a path,
    which is why it lowers preference). *)

val prepend : Asn.t -> t -> t
val contains : Asn.t -> t -> bool
val count : Asn.t -> t -> int
(** Occurrences of an AS in the path. *)

val unique_ases : t -> Asn.Set.t

val traversed : origin:Asn.t -> t -> t
(** The portion of the path that traffic actually traverses: everything
    before the first occurrence of [origin]. A poisoned announcement
    [X-Y-O-A-O] contains the poisoned AS [A] textually, but packets only
    cross [X-Y] before reaching the origin — so "does this route avoid
    [A]?" must be asked of the traversed portion. *)

val traverses : origin:Asn.t -> target:Asn.t -> t -> bool
(** [traverses ~origin ~target path]: does the traffic using this path
    actually cross [target]? *)

val plain : origin:Asn.t -> t
(** The ordinary origination path [O]. *)

val prepended : origin:Asn.t -> copies:int -> t
(** [prepended ~origin ~copies:3] is [O-O-O] — the steady-state baseline
    LIFEGUARD announces so that a later poisoned path has equal length. *)

val poisoned : origin:Asn.t -> poison:Asn.t -> t
(** [poisoned ~origin ~poison:a] is [O-A-O]: starts with the origin (so
    neighbors still route toward [O]), contains [A] to trigger its loop
    detection, and ends with the true origin (so registries stay
    consistent). Raises [Invalid_argument] if [poison] equals [origin]. *)

val poisoned_multi : origin:Asn.t -> poisons:Asn.t list -> t
(** [O-A1-...-Ak-O]: poison several ASes at once (used to defeat ASes that
    accept one occurrence of their own number, by inserting it twice —
    see §7.1). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints as ["O A O"] style: space-separated ASNs, nearest first. *)

val to_string : t -> string
