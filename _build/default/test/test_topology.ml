(* AS graph, relationships, generation and valley-free analysis. *)

open Net
open Topology

let asn = Asn.of_int

let small_graph () =
  (* stub -> regional -> tier1 <-peer-> tier1' <- regional' <- stub' *)
  let g = As_graph.create () in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3; 4; 5; 6 ];
  As_graph.add_link g ~a:(asn 1) ~b:(asn 2) ~rel:Relationship.Provider;
  As_graph.add_link g ~a:(asn 2) ~b:(asn 3) ~rel:Relationship.Provider;
  As_graph.add_link g ~a:(asn 3) ~b:(asn 4) ~rel:Relationship.Peer;
  As_graph.add_link g ~a:(asn 5) ~b:(asn 4) ~rel:Relationship.Provider;
  As_graph.add_link g ~a:(asn 6) ~b:(asn 5) ~rel:Relationship.Provider;
  g

let test_relationship_algebra () =
  Alcotest.(check bool) "invert customer" true
    (Relationship.equal (Relationship.invert Relationship.Customer) Relationship.Provider);
  Alcotest.(check bool) "peer symmetric" true
    (Relationship.equal (Relationship.invert Relationship.Peer) Relationship.Peer);
  Alcotest.(check bool) "customer routes go everywhere" true
    (Relationship.export_ok ~learned_from:Relationship.Customer ~to_:Relationship.Peer);
  Alcotest.(check bool) "peer routes only to customers" false
    (Relationship.export_ok ~learned_from:Relationship.Peer ~to_:Relationship.Provider);
  Alcotest.(check bool) "provider routes to customers" true
    (Relationship.export_ok ~learned_from:Relationship.Provider ~to_:Relationship.Customer);
  Alcotest.(check bool) "prefer customer" true
    (Relationship.local_pref Relationship.Customer > Relationship.local_pref Relationship.Peer);
  Alcotest.(check bool) "prefer peer over provider" true
    (Relationship.local_pref Relationship.Peer > Relationship.local_pref Relationship.Provider)

let test_graph_basics () =
  let g = small_graph () in
  Alcotest.(check int) "as count" 6 (As_graph.as_count g);
  Alcotest.(check int) "link count" 5 (As_graph.link_count g);
  Alcotest.(check bool) "relationship from 1's view" true
    (As_graph.relationship g ~a:(asn 1) ~b:(asn 2) = Some Relationship.Provider);
  Alcotest.(check bool) "inverted from 2's view" true
    (As_graph.relationship g ~a:(asn 2) ~b:(asn 1) = Some Relationship.Customer);
  Alcotest.(check bool) "non-adjacent" true (As_graph.relationship g ~a:(asn 1) ~b:(asn 6) = None);
  Alcotest.(check (list int)) "providers of 1" [ 2 ]
    (List.map Asn.to_int (As_graph.providers g (asn 1)));
  Alcotest.(check (list int)) "customers of 3" [ 2 ]
    (List.map Asn.to_int (As_graph.customers g (asn 3)));
  Alcotest.(check (list int)) "peers of 3" [ 4 ] (List.map Asn.to_int (As_graph.peers g (asn 3)));
  Alcotest.(check bool) "1 is a stub" true (As_graph.is_stub g (asn 1));
  Alcotest.(check bool) "2 is not" false (As_graph.is_stub g (asn 2));
  Alcotest.(check int) "degree of 3" 2 (As_graph.degree g (asn 3))

let test_graph_errors () =
  let g = small_graph () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "duplicate AS" true (raises (fun () -> As_graph.add_as g (asn 1)));
  Alcotest.(check bool) "duplicate link" true
    (raises (fun () -> As_graph.add_link g ~a:(asn 1) ~b:(asn 2) ~rel:Relationship.Peer));
  Alcotest.(check bool) "self link" true
    (raises (fun () -> As_graph.add_link g ~a:(asn 1) ~b:(asn 1) ~rel:Relationship.Peer));
  Alcotest.(check bool) "unknown AS" true (raises (fun () -> ignore (As_graph.neighbors g (asn 99))))

let test_remove_link_and_copy () =
  let g = small_graph () in
  let copy = As_graph.copy g in
  As_graph.remove_link g ~a:(asn 3) ~b:(asn 4);
  Alcotest.(check int) "link removed" 4 (As_graph.link_count g);
  Alcotest.(check bool) "no longer adjacent" true
    (As_graph.relationship g ~a:(asn 3) ~b:(asn 4) = None);
  Alcotest.(check int) "copy unaffected" 5 (As_graph.link_count copy);
  Alcotest.(check bool) "copy still adjacent" true
    (As_graph.relationship copy ~a:(asn 3) ~b:(asn 4) = Some Relationship.Peer)

let test_router_addresses () =
  let g = As_graph.create () in
  As_graph.add_as g ~routers:3 (asn 42);
  let routers = As_graph.routers g (asn 42) in
  Alcotest.(check int) "router count" 3 (Array.length routers);
  Alcotest.(check string) "address derivation" "10.0.42.1"
    (Ipv4.to_string (As_graph.router_address g (asn 42) 0));
  Alcotest.(check bool) "reverse lookup" true
    (As_graph.owner_of_address g (Ipv4.of_string_exn "10.0.42.2") = Some (asn 42));
  Alcotest.(check bool) "unknown address" true
    (As_graph.owner_of_address g (Ipv4.of_string_exn "10.0.43.1") = None)

let test_valley_free () =
  let g = small_graph () in
  let path ns = List.map asn ns in
  Alcotest.(check bool) "up-peer-down is valid" true
    (Splice.valley_free g (path [ 1; 2; 3; 4; 5; 6 ]));
  Alcotest.(check bool) "down then up is a valley" false
    (Splice.valley_free g (path [ 3; 2; 3 ]));
  Alcotest.(check bool) "unknown edge invalid" false (Splice.valley_free g (path [ 1; 6 ]));
  (* Two peer edges in a row: add a second peering and test. *)
  As_graph.add_as g (asn 7);
  As_graph.add_link g ~a:(asn 4) ~b:(asn 7) ~rel:Relationship.Peer;
  Alcotest.(check bool) "two peering edges invalid" false
    (Splice.valley_free g (path [ 2; 3; 4; 7 ]))

let test_policy_reachable () =
  let g = small_graph () in
  let reachable ?(avoiding = []) src dst =
    Splice.policy_reachable g ~src:(asn src) ~dst:(asn dst)
      ~avoiding:(Asn.Set.of_list (List.map asn avoiding))
  in
  Alcotest.(check bool) "across the peering" true (reachable 1 6);
  Alcotest.(check bool) "self" true (reachable 1 1);
  Alcotest.(check bool) "avoiding the only transit fails" false (reachable 1 6 ~avoiding:[ 3 ]);
  Alcotest.(check bool) "avoiding an endpoint fails" false (reachable 1 6 ~avoiding:[ 6 ]);
  match Splice.policy_path g ~src:(asn 1) ~dst:(asn 6) ~avoiding:Asn.Set.empty with
  | Some p -> Alcotest.(check (list int)) "path materializes" [ 1; 2; 3; 4; 5; 6 ] (List.map Asn.to_int p)
  | None -> Alcotest.fail "no path found"

let test_policy_respects_valley () =
  (* A "detour" through a customer and back up must not count: 1 and 3
     both customers of 2; 1 -> 2 -> 3 is provider-down, fine, but
     3 -> 2 -> 4 with 4 a peer of 2 is an export violation when learned
     from provider... Construct: s -down?- no: verify the BFS refuses
     up-after-down. *)
  let g = As_graph.create () in
  List.iter (fun n -> As_graph.add_as g (asn n)) [ 1; 2; 3; 4 ];
  (* 2 is provider of 1 and 3; 4 is provider of 3 only. Path 1..4 must
     go 1-2-3-4? That is down(2->3) then up(3->4): a valley. *)
  As_graph.add_link g ~a:(asn 1) ~b:(asn 2) ~rel:Relationship.Provider;
  As_graph.add_link g ~a:(asn 3) ~b:(asn 2) ~rel:Relationship.Provider;
  As_graph.add_link g ~a:(asn 3) ~b:(asn 4) ~rel:Relationship.Provider;
  Alcotest.(check bool) "valley path rejected" false
    (Splice.policy_reachable g ~src:(asn 1) ~dst:(asn 4) ~avoiding:Asn.Set.empty);
  Alcotest.(check bool) "but 1 reaches 3" true
    (Splice.policy_reachable g ~src:(asn 1) ~dst:(asn 3) ~avoiding:Asn.Set.empty)

let test_tuples_and_splice () =
  let p ns = List.map asn ns in
  let tuples = Splice.Tuples.of_paths [ p [ 1; 2; 3; 4 ]; p [ 5; 3; 6 ] ] in
  Alcotest.(check bool) "observed subpath" true (Splice.Tuples.observed tuples (asn 1) (asn 2) (asn 3));
  Alcotest.(check bool) "reverse observed" true (Splice.Tuples.observed tuples (asn 4) (asn 3) (asn 2));
  Alcotest.(check bool) "unobserved" false (Splice.Tuples.observed tuples (asn 1) (asn 3) (asn 6));
  (* Splice: from 1 via 2-3, into destination 6 via 5-3-6, joint at 3;
     tuple (2,3,6) must be checked. It was never observed, so the splice
     must fail; after adding a path containing it, the splice succeeds. *)
  let from_src = [ p [ 1; 2; 3; 4 ] ] in
  let to_dst = [ p [ 5; 3; 6 ] ] in
  Alcotest.(check bool) "splice blocked by tuple test" true
    (Splice.splice_around ~from_src ~to_dst ~tuples ~avoid:(asn 4) ~dst:(asn 6) = None);
  let tuples' = Splice.Tuples.of_paths [ p [ 1; 2; 3; 4 ]; p [ 5; 3; 6 ]; p [ 2; 3; 6 ] ] in
  match Splice.splice_around ~from_src ~to_dst ~tuples:tuples' ~avoid:(asn 4) ~dst:(asn 6) with
  | Some joined -> Alcotest.(check (list int)) "spliced path" [ 1; 2; 3; 6 ] (List.map Asn.to_int joined)
  | None -> Alcotest.fail "splice should succeed"

let test_generator_structure () =
  let t = Topo_gen.generate ~seed:99 () in
  let g = t.Topo_gen.graph in
  Alcotest.(check int) "tier1 count" 8 (List.length t.Topo_gen.tier1);
  Alcotest.(check int) "stub count" 200 (List.length t.Topo_gen.stub_list);
  (* Tier-1 clique. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Asn.equal a b) then
            Alcotest.(check bool) "tier1s peer" true
              (As_graph.relationship g ~a ~b = Some Relationship.Peer))
        t.Topo_gen.tier1)
    t.Topo_gen.tier1;
  (* Every stub has at least one provider; every AS policy-reaches a
     tier-1 (graph connected under valley-free routing). *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "stub has a provider" true (As_graph.providers g s <> []))
    t.Topo_gen.stub_list;
  let a_tier1 = List.hd t.Topo_gen.tier1 in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "%s reaches tier-1" (Asn.to_string a))
        true
        (Splice.policy_reachable g ~src:a ~dst:a_tier1 ~avoiding:Asn.Set.empty))
    (As_graph.as_list g)

let test_generator_determinism () =
  let a = Topo_gen.generate ~seed:7 () and b = Topo_gen.generate ~seed:7 () in
  Alcotest.(check int) "same link count" (As_graph.link_count a.Topo_gen.graph)
    (As_graph.link_count b.Topo_gen.graph);
  let la = As_graph.as_list a.Topo_gen.graph and lb = As_graph.as_list b.Topo_gen.graph in
  Alcotest.(check (list int)) "same ASes" (List.map Asn.to_int la) (List.map Asn.to_int lb);
  List.iter2
    (fun x y ->
      Alcotest.(check (list int)) "same neighbors"
        (List.map (fun (n, _) -> Asn.to_int n) (As_graph.neighbors a.Topo_gen.graph x))
        (List.map (fun (n, _) -> Asn.to_int n) (As_graph.neighbors b.Topo_gen.graph y)))
    la lb

let prop_invert_involutive =
  let rel =
    QCheck.oneofl [ Relationship.Customer; Relationship.Provider; Relationship.Peer; Relationship.Sibling ]
  in
  QCheck.Test.make ~name:"invert is an involution" ~count:50 rel (fun r ->
      Relationship.equal (Relationship.invert (Relationship.invert r)) r)

let prop_policy_reachable_symmetric =
  (* Valley-free reachability is symmetric: reverse a valid path and it is
     still valid (customer edges become provider edges). *)
  QCheck.Test.make ~name:"policy reachability is symmetric" ~count:20
    QCheck.(int_range 0 10000)
    (fun seed ->
      let t = Topo_gen.generate ~params:(Topo_gen.sized 60) ~seed () in
      let g = t.Topo_gen.graph in
      let all = Array.of_list (As_graph.as_list g) in
      let rng = Prng.create ~seed in
      let a = Prng.pick rng all and b = Prng.pick rng all in
      Splice.policy_reachable g ~src:a ~dst:b ~avoiding:Asn.Set.empty
      = Splice.policy_reachable g ~src:b ~dst:a ~avoiding:Asn.Set.empty)

let suite =
  [
    Alcotest.test_case "relationship algebra" `Quick test_relationship_algebra;
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph errors" `Quick test_graph_errors;
    Alcotest.test_case "remove link / copy" `Quick test_remove_link_and_copy;
    Alcotest.test_case "router addresses" `Quick test_router_addresses;
    Alcotest.test_case "valley-free check" `Quick test_valley_free;
    Alcotest.test_case "policy reachability" `Quick test_policy_reachable;
    Alcotest.test_case "policy respects valleys" `Quick test_policy_respects_valley;
    Alcotest.test_case "tuples and splice" `Quick test_tuples_and_splice;
    Alcotest.test_case "generator structure" `Quick test_generator_structure;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    QCheck_alcotest.to_alcotest prop_invert_involutive;
    QCheck_alcotest.to_alcotest prop_policy_reachable_symmetric;
  ]
