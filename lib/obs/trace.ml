(* JSONL trace sink with per-domain buffers.

   Only the owning domain appends to its buffer; the sink mutex is taken
   when a buffer flushes (at 8 KiB or at close), so concurrent domains
   never interleave within a line. Event ORDER in the output is therefore
   not deterministic across --jobs values; event COUNTS per span are. *)

type value = Int of int | Float of float | Bool of bool | Str of string

type sink = { write : string -> unit; close_sink : unit -> unit }

let lock = Mutex.create ()
let sink : sink option ref = ref None
let enabled = Atomic.make false

let on () = Atomic.get enabled

type dbuf = { buf : Buffer.t; domain : int }

let buffers : dbuf list ref = ref []

let buf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { buf = Buffer.create 8192; domain = (Domain.self () :> int) } in
      Mutex.lock lock;
      buffers := b :: !buffers;
      Mutex.unlock lock;
      b)

let flush_limit = 8192

(* Flush [b] into the sink under the mutex. The enabled flag is cleared
   before the sink is torn down, so a racing flush can find no sink; its
   contents then stay buffered (close drains every buffer anyway). *)
let flush_locked b =
  match !sink with
  | Some s ->
      s.write (Buffer.contents b.buf);
      Buffer.clear b.buf
  | None -> ()

let flush b =
  Mutex.lock lock;
  flush_locked b;
  Mutex.unlock lock

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* %.6g keeps timestamps/durations compact and full-precision
         enough for microsecond-scale spans. *)
      Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'

let event ~ts ~span kvs =
  if Atomic.get enabled then begin
    let b = Domain.DLS.get buf_key in
    let buf = b.buf in
    Buffer.add_string buf "{\"ts\":";
    Buffer.add_string buf (Printf.sprintf "%.6f" ts);
    Buffer.add_string buf ",\"domain\":";
    Buffer.add_string buf (string_of_int b.domain);
    Buffer.add_string buf ",\"span\":\"";
    add_escaped buf span;
    Buffer.add_string buf "\",\"kv\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        add_escaped buf k;
        Buffer.add_string buf "\":";
        add_value buf v)
      kvs;
    Buffer.add_string buf "}}\n";
    if Buffer.length buf >= flush_limit then flush b
  end

let install s =
  Mutex.lock lock;
  (match !sink with
  | Some old -> old.close_sink ()
  | None -> ());
  sink := Some s;
  Mutex.unlock lock;
  Atomic.set enabled true

let enable_file path =
  let oc = open_out path in
  install
    { write = (fun s -> output_string oc s); close_sink = (fun () -> close_out oc) }

let enable_buffer target =
  install
    { write = (fun s -> Buffer.add_string target s); close_sink = ignore }

let close () =
  Atomic.set enabled false;
  Mutex.lock lock;
  List.iter flush_locked !buffers;
  (match !sink with
  | Some s -> s.close_sink ()
  | None -> ());
  sink := None;
  Mutex.unlock lock
