open Net
open Topology

type announcement = {
  prefix : Prefix.t;
  path : As_path.t;
  communities : Community.t list;
  med : int option;
}

let announcement ?(communities = []) ?med ~prefix ~path () =
  if As_path.is_empty path then invalid_arg "Route.announcement: empty AS path";
  { prefix; path; communities; med }

(* Announcements interned by one world's [Path_store] are physically
   shared, so the [==] test settles the hot-path duplicate check in O(1);
   the attribute walk only runs for uninterned values. *)
let announcement_equal a b =
  a == b
  || (Prefix.equal a.prefix b.prefix
     && As_path.equal a.path b.path
     && List.length a.communities = List.length b.communities
     && List.for_all2 Community.equal a.communities b.communities
     && Option.equal Int.equal a.med b.med)

let pp_announcement fmt a =
  Format.fprintf fmt "%a via [%a]" Prefix.pp a.prefix As_path.pp a.path

type entry = {
  ann : announcement;
  neighbor : Asn.t;
  rel : Relationship.t;
  local_pref : int;
  learned_at : float;
  path_len : int;
  tiebreak : int;
}

(* Explicit integer mix, not the polymorphic [Hashtbl.hash], so decision
   tie-breaks are pinned by this source alone. *)
let tiebreak_rank ~salt neighbor =
  let z = (salt * 0x9E3779B1) lxor (Asn.to_int neighbor * 0x5F3759DF) in
  let z = z lxor (z lsr 16) in
  z land 0xFFFF

let make_entry ?salt ~ann ~neighbor ~rel ~local_pref ~learned_at () =
  {
    ann;
    neighbor;
    rel;
    local_pref;
    learned_at;
    path_len = As_path.length ann.path;
    tiebreak =
      (match salt with None -> 0 | Some salt -> tiebreak_rank ~salt neighbor);
  }

let local_pref_local = 400

let local_entry_of ~ann ~self ~now =
  make_entry ~ann ~neighbor:self ~rel:Relationship.Customer
    ~local_pref:local_pref_local ~learned_at:now ()

let local_entry ~prefix ~self ~path ~now =
  local_entry_of ~ann:(announcement ~prefix ~path ()) ~self ~now

let is_local e = e.local_pref = local_pref_local

let pp_entry fmt e =
  Format.fprintf fmt "%a lp=%d from %a" pp_announcement e.ann e.local_pref Asn.pp e.neighbor
