(* Must-pass corpus for LG-ROB-SNAPSHOT: no toplevel [capture] binding
   means the file never opted into the snapshot contract — mutable
   fields are its own business. *)

type t = {
  mutable hits : int;
  pending : (int, int) Hashtbl.t;
}

let bump t =
  t.hits <- t.hits + 1;
  Hashtbl.replace t.pending t.hits t.hits
