lib/core/isolation.ml: Asn Dataplane Format Ipv4 List Measurement Net
