type t = { asn : int; value : int }

let make ~asn ~value =
  if asn < 0 || value < 0 then invalid_arg "Community.make: negative field";
  { asn; value }

let equal a b = a.asn = b.asn && a.value = b.value

let compare a b =
  match Int.compare a.asn b.asn with
  | 0 -> Int.compare a.value b.value
  | c -> c

let hash t = ((t.asn * 0x9E3779B1) lxor (t.value * 0x85EBCA6B)) land max_int

let pp fmt t = Format.fprintf fmt "%d:%d" t.asn t.value
let no_export = { asn = 65535; value = 65281 }
let no_export_to_peers ~asn = { asn; value = 666 }
let is_no_export t = equal t no_export
let is_no_export_to_peers ~asn t = t.asn = asn && t.value = 666
