(** Span helpers: bracket a phase with begin/end trace events.

    A span emits two {!Trace} events — [phase=begin] at entry and
    [phase=end] (with a [dur] in seconds) at exit, even on exception —
    timestamped from {!Clock}. With tracing disabled the wrapped function
    runs with zero overhead beyond one flag read. *)

val run : name:string -> ?kv:(string * Trace.value) list -> (unit -> 'a) -> 'a
(** [run ~name f] executes [f ()] inside a span called [name]. [kv]
    pairs are attached to both the begin and end events. The end event
    carries [dur] (wall seconds from the injected {!Clock}; 0 when no
    clock source is installed) and [ok] ([false] when [f] raised — the
    exception is re-raised after the event is recorded). *)
