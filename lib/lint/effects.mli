(** Effect summaries inferred over the {!Callgraph} and the [LG-EFF-*]
    rule family.

    The lattice is the powerset of six effect atoms; [analyse] seeds
    them from the same syntactic signals the per-file detectors use
    (plus edges into module-level mutable bindings) and propagates
    [effects f = seed f U union (effects callee)] to a fixpoint over
    SCCs, callee-first. Seeds inside the declared-exempt modules
    ([lib/obs] for state/printing, [lib/prng] for randomness) are not
    planted, so the sanctioned observability layer does not taint every
    instrumented function. *)

type eff = Clock | Random | Global_mut | Prints | Catchall | Io

val all_effects : eff list
(** In display order. *)

val label : eff -> string

type origin =
  | Prim of string * int  (** primitive path as written, line *)
  | Call of int * int  (** callee def id, call-site line *)
  | Global of int * int  (** mutable-global def id, reference line *)

type t

val analyse : Callgraph.t -> t

val effects_of : t -> int -> eff list
val has : t -> int -> eff -> bool

val is_direct : t -> int -> eff -> bool
(** Seeded in the function's own body (the per-file rules already cover
    those sites); [LG-EFF-*] reports only the transitive reachers. *)

val trace : t -> int -> eff -> string list
(** Witness chain from a definition to the primitive that grounds the
    effect, as display names, e.g.
    [\["Fleet.Service.run"; "Fleet.Retry.sleep"; "Unix.gettimeofday"\]]. *)

val trace_string : t -> int -> eff -> string
(** {!trace} joined with [" -> "]. *)

val row : t -> int -> string
(** Comma-joined effect labels of one definition, or ["pure"]. *)

val summary_rows : t -> (string * string) list
(** (display, row) for every exported definition of every library file,
    sorted by display name — the [--effects] table. *)

val planner_file : string -> bool
(** Is this path a plan subsystem's [planner.ml] (a [planner.ml] whose
    directory name starts with ["plan"])? Exported defs of such files
    are held to [LG-PLAN-STALE]'s purity bar. *)

val violations : t -> Source_scan.violation list
(** The [LG-EFF-CLOCK] / [LG-EFF-RANDOM] / [LG-EFF-GLOBALMUT] reports:
    exported library functions that transitively (never directly — the
    syntactic rules own those sites) reach the wall clock / [Random] /
    module-level mutable state, with the witness chain in the message.
    Plus [LG-PLAN-STALE]: planner entry points ({!planner_file}) must be
    effect-pure — no clock, [Random], or module-level mutable state
    reachable at all, direct uses and exempt-module escapes included. *)
