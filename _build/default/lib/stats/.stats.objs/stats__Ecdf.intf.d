lib/stats/ecdf.mli:
