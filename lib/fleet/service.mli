(** The continuous LIFEGUARD operations loop: one long-running service
    simulation over a BGP-Mux-style world.

    Where the batch experiments inject one failure and watch one pipeline,
    the service runs the paper's system as it would actually be deployed:
    Poisson outage arrivals over a live topology, per-target reachability
    monitoring under a global probe budget, concurrent isolation pipelines
    with bounded retries and exponential backoff, and a remediation queue
    that paces announcements to stay clear of route-flap damping —
    optionally under chaos (probe loss, vantage-point crashes, stale path
    atlases). Everything is seeded, so a day of fleet operations is a pure
    function of its configuration. *)

type config = {
  ases : int;  (** Synthetic Internet size (default 150). *)
  target_count : int;  (** Monitored edge networks (default 25). *)
  duration : float;  (** Observation window in seconds (default 86400). *)
  outages_per_day : float;  (** Poisson arrival rate (default 12/day). *)
  monitor_interval : float;  (** Ping-pair period per target (default 30 s). *)
  atlas_refresh_interval : float;  (** Path-atlas refresh period (default 3600 s). *)
  probe_rate : float;  (** Global budget: probe pairs per second (default 4). *)
  probe_burst : float;  (** Global budget bucket size (default 120). *)
  per_vp_rate : float;  (** Per-VP cap rate; [infinity] = uncapped (default). *)
  per_vp_burst : float;  (** Per-VP cap bucket size. *)
  isolation_cost : int;  (** Budget cost of one isolation attempt (default 35). *)
  announce_spacing : float;
      (** Seconds between BGP announcements — the paper's ~90 min damping
          margin (default 5400). *)
  min_outage_age : float;  (** Decision age gate (default 300 s). *)
  recheck_interval : float;  (** Wait/recovery recheck period (default 120 s). *)
  retry : Retry.policy;  (** Isolation retry/backoff policy. *)
  chaos : Chaos.config;  (** Chaos knobs (default {!Chaos.none}). *)
  faults : Bgp.Faults.config;
      (** Control-plane fault schedule (default {!Bgp.Faults.none}):
          session flaps, link failures, router crashes, update
          loss/duplication. Armed after baseline convergence; the origin
          is protected from crashes. *)
  planning : bool;
      (** Precompute remediation plans offline ([Plan.Planner] over this
          world's graph) and consult the plan cache before every fresh
          decision, with invalidation on structural fault churn and
          breaker trips and watchdog-divergence demotion. Default false:
          the legacy compute-every-time pipeline, byte-identical to
          before the knob existed. *)
  decision_latency : float;
      (** Modeled cost of computing a remediation from scratch (simulated
          seconds); plan-cache hits skip it. Default 0. *)
  shards : int option;
      (** [Some k]: partition the world over [k] shard domains advanced
          between deterministic time barriers, with a worker pool owned
          for the trial's lifetime — tables are byte-identical at any
          [k >= 1] and any pool width (but may differ from [None], the
          legacy single-queue engine, whose equal-timestamp delivery
          interleaving follows scheduling order). Default [None]. *)
}

val default_config : config

(** Everything a day of operations produced. *)
type report = {
  days : float;
  injected : int;  (** Ground-truth failures injected. *)
  drawn : int;  (** Poisson arrivals drawn (incl. unplaceable). *)
  unplaceable : int;
  detected : int;  (** Monitor threshold crossings handed to pipelines. *)
  repaired : int;  (** Outages ending in sentinel-confirmed repair + unpoison. *)
  stood_down : int;  (** Resolved before or instead of poisoning. *)
  gave_up : int;
      (** Terminal failures of the repair itself: retry budget, pipeline
          timeout, watchdog rollback, or circuit breaker. *)
  unfinished : int;
      (** Still open at the horizon: running pipelines, queued poisons,
          and targets attached to a standing poison awaiting repair. *)
  poisons : int;
  unpoisons : int;
  time_to_repair : float list;
      (** Detection-to-repair latency per repaired outage, in order of
          repair (s). *)
  time_to_confirm : float list;
      (** Detection-to-[Repair_confirmed] latency per target whose
          traffic was rerouted around a confirmed poison, in event
          order (s). Unlike {!time_to_repair}, which runs until the
          underlying failure heals and the poison is withdrawn, this
          measures only the window the repair machinery controls — the
          fast-reroute latency the plan cache shortens. *)
  monitor_pairs : int;  (** Ping pairs the monitors sent. *)
  monitor_skipped : int;  (** Monitor rounds the budget refused. *)
  probes_sent : int;  (** All data-plane probes (incl. isolation). *)
  budget_granted : int;
  budget_denied : int;
  isolation_retries : int;
  vp_crashes : int;
  lost_probes : int;
  stale_refreshes : int;
  collector_updates : int;  (** Route-collector records during the window. *)
  injected_ge15 : int;  (** Injected outages lasting >= 15 min (raw count). *)
  injected_h15 : float;  (** Injected outages/day lasting >= 15 min. *)
  measured_updates_per_day : float;  (** (poisons + unpoisons) / days. *)
  predicted_updates_per_day : float;
      (** Table 2 model anchored at [injected_h15] (i = 1, t = the
          poisonable direction share, d = the age gate, two updates per
          remediated outage). *)
  reannounced : int;  (** Watchdog re-announcements after flushed/lost poisons. *)
  rolled_back : int;  (** Poisons withdrawn as failed. *)
  breaker_trips : int;  (** Poison verdicts refused by an open breaker. *)
  session_flaps : int;  (** Injected control-plane faults... *)
  link_failures : int;
  router_crashes : int;
  updates_dropped : int;
  updates_duplicated : int;  (** ...per class. *)
  plan_hits : int;  (** Decisions served from the plan cache. *)
  plan_misses : int;  (** Lookups that fell through to a fresh decision. *)
  plan_invalidations : int;
      (** Cache flushes (topology churn) plus breaker-conflict drops. *)
  plan_demotions : int;
      (** Plans demoted to compute-fresh after watchdog divergence. *)
}

val run : ?config:config -> seed:int -> unit -> report
(** Build the world, run the service for [config.duration] simulated
    seconds, and account for everything. Deterministic in [(config, seed)].
    With [config.shards = Some k] the world runs sharded (see
    {!type:config}); the per-run worker pool is created and torn down
    inside this call. *)

(** {1 Durable (crash-tolerant) runs}

    A durable run is the same simulation with a write-ahead operations
    journal: every externally visible controller action is serialized
    and persisted {e before} its effect executes. Recovery is
    deterministic re-execution — the resumed run replays from [t = 0]
    with the persisted journal as its expected prefix, verifying each
    re-derived action byte-for-byte ({!Recover.Journal.Divergence}
    otherwise) and, when a snapshot is supplied, verifying that
    re-execution reaching the snapshot's mark reproduces its exact bytes
    ({!Recover.Snapshot.Mismatch} otherwise). Because replay re-derives
    every action, an effect lost to an [After_write] crash is re-applied
    exactly once, and the resumed run's report is byte-identical to the
    uninterrupted run's at any jobs/shards width. *)

val config_fingerprint : config:config -> seed:int -> string
(** Stable 16-hex-digit fingerprint of [(config, seed)], stamped into
    snapshots so a resume under a different world is refused loudly. *)

val render_report : report -> string list
(** Deterministic [key value] line rendering of a report, one field per
    line; floats as lossless hex floats. Byte-stable: two reports are
    equal iff their renderings are. *)

val parse_report : string list -> report option
(** Inverse of {!render_report}. [None] on missing or malformed
    fields. *)

val merge : seed:int -> config:config -> report -> report -> report
(** Associative segment merge: counters sum, latency lists concatenate
    in order, [unfinished] takes the later segment's point-in-time
    value, and the derived rates ([injected_h15], measured and predicted
    updates/day) are recomputed from the merged raw sums — so merging a
    snapshot's head report with the resumed tail reproduces the
    uninterrupted report byte-for-byte. *)

type recovery = {
  rc_reconcile : Recover.Reconcile.t;
      (** Journal-vs-collector reconciliation: exactly-once poison
          accounting (no double poison, no orphaned poison). *)
  rc_journal : string list;  (** Full journal after the run, oldest first. *)
  rc_replayed : int;  (** Journal lines verified as the replay prefix. *)
  rc_marks : int;  (** Snapshot marks captured during this run. *)
  rc_tail : report option;
      (** Resumes only: the report of the segment after the snapshot's
          mark; [merge snapshot_head rc_tail] equals the full report. *)
}

type outcome =
  | Finished of { report : report; recovery : recovery }
  | Interrupted of {
      boundary : Recover.Crash.boundary;
      append : int;
      journal : string list;  (** Journal as persisted at the crash. *)
      snapshot : Recover.Snapshot.t option;  (** Last snapshot captured. *)
    }  (** An injected crash fired: everything a process death leaves on disk. *)

val run_durable :
  ?config:config ->
  seed:int ->
  ?journal:string list ->
  ?snapshot:Recover.Snapshot.t ->
  ?crash:Recover.Crash.spec ->
  ?snapshot_every:float ->
  ?journal_sink:(string -> unit) ->
  ?snapshot_sink:(Recover.Snapshot.t -> unit) ->
  unit ->
  outcome
(** The durable entry point. Fresh run: leave [journal] empty. Resume:
    pass the persisted [journal] lines (and the last [snapshot], if any
    — its [config_fp] must match, [Invalid_argument] otherwise).
    [snapshot_every] > 0 arms periodic snapshot marks on the simulation
    clock; [journal_sink] sees each persisted line as it is appended
    (replayed lines included, in order); [snapshot_sink] sees each
    captured snapshot. [crash] injects a crash at the given journal
    append boundary — the run dies as {!Interrupted} exactly as a real
    process death at that point would. Deterministic in every
    argument. *)
