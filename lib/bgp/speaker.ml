open Net
open Topology

(* Decision-process invocations and the loc-RIB size high-watermark
   (Obs). The gauge is a max, not a last-write: a max merges across
   domain shards independently of trial scheduling, which keeps the
   --metrics summary byte-identical for every --jobs value. *)
let m_decisions = Obs.Metrics.counter "bgp.decisions"
let m_loc_rib = Obs.Metrics.gauge "bgp.loc_rib"

type action = Announce of Route.announcement | Withdraw of Prefix.t

type origination = { per_neighbor : Asn.t -> As_path.t option }

type t = {
  self : Asn.t;
  config : Policy.config;
  neighbor_rel : (Asn.t, Relationship.t) Hashtbl.t;
  neighbor_list : (Asn.t * Relationship.t) list ref;
  peers_of_self : Asn.Set.t ref;
  down_sessions : (Asn.t, unit) Hashtbl.t;
  adj_in : (Prefix.t, (Asn.t, Route.entry) Hashtbl.t) Hashtbl.t;
      (** prefix -> (neighbor -> candidate route) *)
  neighbor_index : (Asn.t, (Prefix.t, unit) Hashtbl.t) Hashtbl.t;
      (** Reverse index of [adj_in]: neighbor -> prefixes it currently has a
          candidate for. Kept exactly in sync so [affected_prefixes] and
          [session_down] never fold the whole adj-RIB-in. *)
  locals : (Prefix.t, origination) Hashtbl.t;
  best_table : (Prefix.t, Route.entry) Hashtbl.t;
  mutable fib : Route.entry Prefix_trie.t;
  adj_out : (Asn.t * Prefix.t, Route.announcement) Hashtbl.t;
  mutable on_best_change : (now:float -> Prefix.t -> Route.entry option -> unit) option;
  mutable fib_commit : (Prefix.t -> Route.entry option -> unit) option;
  damp : (Prefix.t * Asn.t, damp_state) Hashtbl.t;
  mutable reuse_scheduler : (delay:float -> Prefix.t -> unit) option;
}

and damp_state = { mutable penalty : float; mutable last : float; mutable suppressed : bool }

let create ~asn ~config ~neighbors =
  let neighbor_rel = Hashtbl.create 16 in
  List.iter (fun (n, rel) -> Hashtbl.replace neighbor_rel n rel) neighbors;
  let peers =
    List.fold_left
      (fun acc (n, rel) ->
        if Relationship.equal rel Relationship.Peer then Asn.Set.add n acc else acc)
      Asn.Set.empty neighbors
  in
  {
    self = asn;
    config;
    neighbor_rel;
    neighbor_list = ref neighbors;
    peers_of_self = ref peers;
    down_sessions = Hashtbl.create 4;
    adj_in = Hashtbl.create 64;
    neighbor_index = Hashtbl.create 16;
    locals = Hashtbl.create 4;
    best_table = Hashtbl.create 16;
    fib = Prefix_trie.empty;
    adj_out = Hashtbl.create 64;
    on_best_change = None;
    fib_commit = None;
    damp = Hashtbl.create 16;
    reuse_scheduler = None;
  }

let asn t = t.self
let config t = t.config
let neighbors t = !(t.neighbor_list)
let set_on_best_change t f = t.on_best_change <- Some f
let set_reuse_scheduler t f = t.reuse_scheduler <- Some f
let set_fib_commit_hook t f = t.fib_commit <- Some f

(* --- Route-flap damping (RFC 2439, simplified) --- *)

let decayed_penalty (cfg : Policy.damping) state ~now =
  let dt = now -. state.last in
  if dt <= 0.0 then state.penalty
  else state.penalty *. (0.5 ** (dt /. cfg.Policy.half_life))

(* Record one flap of (prefix, neighbor); returns true when the route
   just crossed into suppression. *)
let note_flap t ~now prefix neighbor =
  match t.config.Policy.damping with
  | None -> false
  | Some cfg ->
      let key = (prefix, neighbor) in
      let state =
        match Hashtbl.find_opt t.damp key with
        | Some s -> s
        | None ->
            let s = { penalty = 0.0; last = now; suppressed = false } in
            Hashtbl.replace t.damp key s;
            s
      in
      state.penalty <- decayed_penalty cfg state ~now +. cfg.Policy.penalty_per_flap;
      state.last <- now;
      if (not state.suppressed) && state.penalty >= cfg.Policy.suppress_threshold then begin
        state.suppressed <- true;
        (* Ask for a wake-up when the penalty will have decayed to the
           reuse threshold. *)
        (match t.reuse_scheduler with
        | Some schedule ->
            let ratio = state.penalty /. cfg.Policy.reuse_threshold in
            let delay = cfg.Policy.half_life *. (log ratio /. log 2.0) in
            schedule ~delay:(Float.max 1.0 delay) prefix
        | None -> ());
        true
      end
      else false

(* Lazily lift suppression once the penalty has decayed. *)
let is_suppressed t ~now prefix neighbor =
  match t.config.Policy.damping with
  | None -> false
  | Some cfg -> begin
      match Hashtbl.find_opt t.damp (prefix, neighbor) with
      | None -> false
      | Some state ->
          if not state.suppressed then false
          else begin
            let p = decayed_penalty cfg state ~now in
            if p < cfg.Policy.reuse_threshold then begin
              state.penalty <- p;
              state.last <- now;
              state.suppressed <- false;
              false
            end
            else true
          end
    end

let install_fib t prefix entry =
  match entry with
  | Some e -> t.fib <- Prefix_trie.add prefix e t.fib
  | None -> t.fib <- Prefix_trie.remove prefix t.fib

let session_is_down t n = Hashtbl.mem t.down_sessions n

let rel_of t n =
  match Hashtbl.find_opt t.neighbor_rel n with
  | Some rel -> rel
  | None -> invalid_arg (Printf.sprintf "Speaker %s: unknown neighbor %s"
                           (Asn.to_string t.self) (Asn.to_string n))

let adj_in_table t prefix =
  match Hashtbl.find_opt t.adj_in prefix with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 8 in
      Hashtbl.replace t.adj_in prefix table;
      table

let index_add t neighbor prefix =
  let tbl =
    match Hashtbl.find_opt t.neighbor_index neighbor with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 16 in
        Hashtbl.replace t.neighbor_index neighbor tbl;
        tbl
  in
  Hashtbl.replace tbl prefix ()

let index_remove t neighbor prefix =
  match Hashtbl.find_opt t.neighbor_index neighbor with
  | Some tbl -> Hashtbl.remove tbl prefix
  | None -> ()

(* The loc-RIB best for a prefix: a local origination wins outright;
   otherwise the decision process over the adj-RIB-in candidates. *)
let compute_best t ~now prefix =
  Obs.Metrics.incr m_decisions;
  if Hashtbl.mem t.locals prefix then
    Some (Route.local_entry ~prefix ~self:t.self ~path:(As_path.plain ~origin:t.self) ~now)
  else begin
    match Hashtbl.find_opt t.adj_in prefix with
    | None -> None
    | Some table ->
        if Hashtbl.length t.damp = 0 then Decision.best_in_table table
        else begin
          (* Damped candidates are ineligible until their penalty decays. *)
          let eligible =
            Hashtbl.fold
              (fun neighbor entry acc ->
                if is_suppressed t ~now prefix neighbor then acc else entry :: acc)
              table []
          in
          Decision.best eligible
        end
  end

(* Desired announcement toward one neighbor for a prefix, or None. *)
let desired_export t prefix neighbor =
  if session_is_down t neighbor then None
  else begin
    match Hashtbl.find_opt t.locals prefix with
    | Some { per_neighbor } -> begin
        match per_neighbor neighbor with
        | Some path -> Some (Route.announcement ~prefix ~path ())
        | None -> None
      end
    | None -> begin
        match Hashtbl.find_opt t.best_table prefix with
        | None -> None
        | Some entry ->
            Policy.export t.config ~self:t.self ~entry ~to_neighbor:neighbor
              ~to_rel:(rel_of t neighbor)
      end
  end

(* Diff desired exports against adj-RIB-out; mutate adj-RIB-out and return
   the updates to put on the wire. *)
let sync_exports t prefix =
  List.filter_map
    (fun (n, _) ->
      let key = (n, prefix) in
      let desired = desired_export t prefix n in
      let current = Hashtbl.find_opt t.adj_out key in
      match (desired, current) with
      | None, None -> None
      | Some d, Some c when Route.announcement_equal d c -> None
      | Some d, _ ->
          Hashtbl.replace t.adj_out key d;
          Some (n, Announce d)
      | None, Some _ ->
          Hashtbl.remove t.adj_out key;
          Some (n, Withdraw prefix))
    (neighbors t)

let refresh_best t ~now prefix =
  let old_best = Hashtbl.find_opt t.best_table prefix in
  let new_best = compute_best t ~now prefix in
  let changed =
    match (old_best, new_best) with
    | None, None -> false
    | Some a, Some b ->
        not (Route.announcement_equal a.Route.ann b.Route.ann)
        || not (Asn.equal a.Route.neighbor b.Route.neighbor)
    | _ -> true
  in
  if changed then begin
    (match new_best with
    | Some e -> Hashtbl.replace t.best_table prefix e
    | None -> Hashtbl.remove t.best_table prefix);
    Obs.Metrics.observe_max m_loc_rib (Hashtbl.length t.best_table);
    (match t.fib_commit with
    | Some commit -> commit prefix new_best
    | None -> install_fib t prefix new_best);
    match t.on_best_change with
    | Some f -> f ~now prefix new_best
    | None -> ()
  end;
  (* Exports are resynced even when the best is unchanged: a session
     coming back up or an origination change may alter per-neighbor
     desired state without moving the loc-RIB. *)
  sync_exports t prefix

let originate t ~now ~prefix ~per_neighbor =
  Hashtbl.replace t.locals prefix { per_neighbor };
  refresh_best t ~now prefix

let stop_originating t ~now ~prefix =
  Hashtbl.remove t.locals prefix;
  refresh_best t ~now prefix

let receive t ~now ~from action =
  if session_is_down t from then []
  else begin
    match action with
    | Withdraw prefix ->
        if Hashtbl.mem (adj_in_table t prefix) from then
          ignore (note_flap t ~now prefix from);
        Hashtbl.remove (adj_in_table t prefix) from;
        index_remove t from prefix;
        refresh_best t ~now prefix
    | Announce ann -> begin
        let prefix = ann.Route.prefix in
        (* A changed announcement from a neighbor that already had a route
           is a flap. *)
        (match Hashtbl.find_opt (adj_in_table t prefix) from with
        | Some previous
          when not (Route.announcement_equal previous.Route.ann ann) ->
            ignore (note_flap t ~now prefix from)
        | Some _ | None -> ());
        let rel = rel_of t from in
        match
          Policy.import t.config ~self:t.self ~peers_of_self:!(t.peers_of_self)
            ~neighbor:from ~rel ann
        with
        | Policy.Rejected _ ->
            (* An update that fails import replaces (removes) whatever this
               neighbor previously announced for the prefix. *)
            Hashtbl.remove (adj_in_table t prefix) from;
            index_remove t from prefix;
            refresh_best t ~now prefix
        | Policy.Accepted local_pref ->
            Hashtbl.replace (adj_in_table t prefix) from
              (Route.make_entry ~salt:(Asn.to_int t.self) ~ann ~neighbor:from
                 ~rel ~local_pref ~learned_at:now ());
            index_add t from prefix;
            refresh_best t ~now prefix
      end
  end

let affected_prefixes t neighbor =
  let from_adj =
    match Hashtbl.find_opt t.neighbor_index neighbor with
    | None -> Prefix.Set.empty
    | Some tbl -> Hashtbl.fold (fun p () acc -> Prefix.Set.add p acc) tbl Prefix.Set.empty
  in
  Hashtbl.fold (fun p _ acc -> Prefix.Set.add p acc) t.locals from_adj

let session_down t ~now ~neighbor =
  if session_is_down t neighbor then []
  else begin
    Hashtbl.replace t.down_sessions neighbor ();
    let affected = affected_prefixes t neighbor in
    (match Hashtbl.find_opt t.neighbor_index neighbor with
    | Some tbl ->
        Hashtbl.iter (fun p () -> Hashtbl.remove (adj_in_table t p) neighbor) tbl;
        Hashtbl.remove t.neighbor_index neighbor
    | None -> ());
    (* Clear adj-RIB-out toward the dead session so a later session_up
       re-announces from scratch. *)
    Hashtbl.iter
      (fun p _ -> Hashtbl.remove t.adj_out (neighbor, p))
      t.best_table;
    Hashtbl.iter (fun p _ -> Hashtbl.remove t.adj_out (neighbor, p)) t.locals;
    List.concat_map (fun p -> refresh_best t ~now p) (Prefix.Set.elements affected)
  end

let session_up t ~now ~neighbor =
  if not (session_is_down t neighbor) then []
  else begin
    Hashtbl.remove t.down_sessions neighbor;
    (* Re-announce current state for every known prefix to this
       neighbor. *)
    let all =
      Hashtbl.fold (fun p _ acc -> Prefix.Set.add p acc) t.best_table Prefix.Set.empty
      |> fun s -> Hashtbl.fold (fun p _ acc -> Prefix.Set.add p acc) t.locals s
    in
    List.concat_map (fun p -> refresh_best t ~now p) (Prefix.Set.elements all)
  end

let refresh_prefix t ~prefix =
  (* Forget what was last sent so [sync_exports] re-emits the current
     desired announcement even when it is unchanged: the receiving side
     may have flushed or lost it (session reset, filtered update), which
     the diff against our own adj-RIB-out cannot see. *)
  List.iter
    (fun (n, _) -> if not (session_is_down t n) then Hashtbl.remove t.adj_out (n, prefix))
    (neighbors t);
  sync_exports t prefix

let best t prefix = Hashtbl.find_opt t.best_table prefix
let fib_lookup t ip = Prefix_trie.lookup ip t.fib

let prefixes t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.best_table [] |> List.sort_uniq Prefix.compare

let originated t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.locals [] |> List.sort_uniq Prefix.compare

let adj_in_size t = Hashtbl.fold (fun _ table acc -> acc + Hashtbl.length table) t.adj_in 0
let reevaluate t ~now prefix = refresh_best t ~now prefix

let suppressed_candidates t prefix =
  Hashtbl.fold
    (fun (p, neighbor) state acc ->
      if Prefix.equal p prefix && state.suppressed then neighbor :: acc else acc)
    t.damp []
  |> List.sort Asn.compare
