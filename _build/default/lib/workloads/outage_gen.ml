type params = {
  short_weight : float;
  short_mean : float;
  long_shape : float;
  long_scale : float;
  floor : float;
  cap : float;
}

let default_params =
  {
    short_weight = 0.88;
    short_mean = 40.0;
    long_shape = 0.70;
    long_scale = 150.0;
    floor = 90.0;
    cap = 259200.0 (* three days *);
  }

let duration ?(params = default_params) rng =
  let raw =
    if Prng.bernoulli rng ~p:params.short_weight then
      Prng.Dist.exponential rng ~mean:params.short_mean
    else Prng.Dist.pareto rng ~shape:params.long_shape ~scale:params.long_scale
  in
  Float.min (params.floor +. raw) params.cap

let durations ?params ~seed ~n () =
  let rng = Prng.create ~seed in
  Array.init n (fun _ -> duration ?params rng)

type direction = Forward | Reverse | Bidirectional

type shape = { direction : direction; on_link : bool; duration : float }

let shape ?params rng =
  let direction =
    let u = Prng.float rng in
    if u < 0.40 then Reverse else if u < 0.80 then Forward else Bidirectional
  in
  { direction; on_link = Prng.bernoulli rng ~p:0.38; duration = duration ?params rng }

let total_unavailability = Stats.Descriptive.sum

let unavailability_share_above ds ~threshold =
  let total = total_unavailability ds in
  if total <= 0.0 then 0.0
  else begin
    let above =
      Array.fold_left (fun acc d -> if d > threshold then acc +. d else acc) 0.0 ds
    in
    above /. total
  end
