(** The historical path atlas.

    LIFEGUARD's isolation hinges on knowing what paths {e used} to look
    like: during a failure it probes the hops of recently-observed forward
    and reverse paths to find where reachability breaks (§4.1). The atlas
    stores timestamped AS-level forward and reverse paths per
    (vantage point, destination) pair and accounts for the refresh cost
    (§5.4: an amortized ~10 IP-option probes and ~2 traceroutes per
    refreshed reverse path, thanks to caching). *)

open Net

type snapshot = {
  taken_at : float;
  path : Asn.t list;  (** AS-level, measuring side first. *)
}

type t

val create : unit -> t

val record_forward : t -> vp:Asn.t -> dst:Asn.t -> now:float -> Asn.t list -> unit
(** Store an observed forward path (vp first). *)

val record_reverse : t -> vp:Asn.t -> dst:Asn.t -> now:float -> Asn.t list -> unit
(** Store an observed reverse path, listed destination first (the path
    packets take from [dst] back to [vp]). *)

val forward_history : t -> vp:Asn.t -> dst:Asn.t -> snapshot list
(** Newest first. *)

val reverse_history : t -> vp:Asn.t -> dst:Asn.t -> snapshot list

val latest_forward : t -> vp:Asn.t -> dst:Asn.t -> ?before:float -> unit -> snapshot option
val latest_reverse : t -> vp:Asn.t -> dst:Asn.t -> ?before:float -> unit -> snapshot option

val candidate_hops : t -> vp:Asn.t -> dst:Asn.t -> Asn.Set.t
(** Every AS seen on any stored path between the pair — the isolation
    suspect universe. *)

val refresh : t -> Dataplane.Probe.env -> vp:Asn.t -> dst:Asn.t -> now:float -> unit
(** Measure the current forward path (traceroute) and reverse path
    (reverse traceroute emulation, using [vp] itself as the spoof helper)
    and record both. Probe costs accrue on the environment. *)

val refresh_all : t -> Dataplane.Probe.env -> vps:Asn.t list -> dsts:Asn.t list -> now:float -> unit
(** Refresh every (vp, dst) pair. *)

val pair_count : t -> int
val snapshot_count : t -> int
