open Net

type remedy =
  | Poison of { path : Bgp.As_path.t }
  | Selective_poison of { path : Bgp.As_path.t; via : Asn.t list }
  | Alternate_path
  | Hopeless of string

let feasible = function
  | Poison _ | Selective_poison _ | Alternate_path -> true
  | Hopeless _ -> false

let poisons = function
  | Poison _ | Selective_poison _ -> true
  | Alternate_path | Hopeless _ -> false

let remedy_name = function
  | Poison _ -> "poison"
  | Selective_poison _ -> "selective-poison"
  | Alternate_path -> "alternate-path"
  | Hopeless _ -> "hopeless"

module Key = struct
  type t = Asn.t * Failure_class.t

  let compare (ta, ca) (tb, cb) =
    let c = Asn.compare ta tb in
    if c <> 0 then c else Failure_class.compare ca cb
end

module M = Map.Make (Key)

type t = remedy M.t

let empty = M.empty
let add t ~target ~cls remedy = M.add (target, cls) remedy t
let find t ~target ~cls = M.find_opt (target, cls) t
let cardinal = M.cardinal
let entries t = M.bindings t

let fold f t acc =
  M.fold (fun (target, cls) remedy acc -> f ~target ~cls remedy acc) t acc

let filter f t = M.filter (fun (target, cls) remedy -> f ~target ~cls remedy) t
