lib/core/orchestrator.ml: Asn Bgp Dataplane Decide Format Hashtbl Isolation List Logs Measurement Net Prefix Remediate Sim Topology
