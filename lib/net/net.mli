(** Internet addressing primitives: AS numbers, IPv4 addresses, CIDR
    prefixes and a longest-prefix-match trie.

    This interface pins the library surface to exactly these four
    modules; helper code stays internal. *)

module Asn = Asn
module Ipv4 = Ipv4
module Prefix = Prefix
module Prefix_trie = Prefix_trie
