test/test_behaviors.ml: Alcotest As_graph Asn Bgp Dataplane Helpers Lifeguard List Measurement Net Prefix Relationship Sim Topology
