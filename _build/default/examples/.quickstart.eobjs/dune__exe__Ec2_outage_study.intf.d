examples/ec2_outage_study.mli:
