lib/bgp/route.mli: As_path Asn Community Format Net Prefix Relationship Topology
