(* lint: allow LG-DET-CLOCK *)
let now () = Unix.gettimeofday ()

let later () = Sys.time () (* lint: allow LG-DET-CLOCK *)

let bare () = Unix.time ()
