lib/experiments/sec72_sentinel.ml: As_graph Asn Bgp Dataplane List Net Prefix Relationship Sim Stats Topology
