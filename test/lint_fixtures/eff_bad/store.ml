(* Module-level mutable table (LG-DOM-MUT at the definition); [put] is
   an exported function reaching it — LG-EFF-GLOBALMUT, proven from the
   edge into the mutable binding. *)
let table = Hashtbl.create 7

let put k = Hashtbl.replace table k ()
