let () =
  Alcotest.run "lifeguard"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("net", Test_net.suite);
      ("sim", Test_sim.suite);
      ("topology", Test_topology.suite);
      ("bgp", Test_bgp.suite);
      ("bgp-more", Test_bgp_more.suite);
      ("interner", Test_interner.suite);
      ("dataplane", Test_dataplane.suite);
      ("measurement", Test_measurement.suite);
      ("lifeguard", Test_lifeguard.suite);
      ("workloads", Test_workloads.suite);
      ("fleet", Test_fleet.suite);
      ("plan", Test_plan.suite);
      ("recover", Test_recover.suite);
      ("par", Test_par.suite);
      ("shard", Test_shard.suite);
      ("experiments", Test_experiments.suite);
      ("behaviors", Test_behaviors.suite);
      ("invariants", Test_invariants.suite);
      ("lint", Test_lint.suite);
      ("obs", Test_obs.suite);
    ]
