lib/dataplane/dataplane.ml: Failure Forward Probe
