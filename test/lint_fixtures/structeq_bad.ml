(* must-flag: structural =/compare on interned BGP values defeats the
   O(1) hash-consed equality. Four violations. *)

let same_ann a b = a.Bgp.Route.ann = b.Bgp.Route.ann
let changed x y = x.Route.path <> y.Route.path
let is_fresh p asn = p = Bgp.As_path.plain ~origin:asn
let order p q = Stdlib.compare (Bgp.As_path.traversed p) q
