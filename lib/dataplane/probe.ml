open Net
open Topology

(* Probe-issue accounting (Obs): [meas.probes] mirrors the per-env
   [probes_sent] totals the experiments report, and each charge emits a
   "meas.probe" trace event stamped with simulation time. *)
let m_probes = Obs.Metrics.counter "meas.probes"

type env = { net : Bgp.Network.t; failures : Failure.set; mutable probes_sent : int }

let env net failures = { net; failures; probes_sent = 0 }
let reset_probe_count t = t.probes_sent <- 0

let count t n =
  t.probes_sent <- t.probes_sent + n;
  Obs.Metrics.add m_probes n;
  if Obs.Trace.on () then
    Obs.Trace.event
      ~ts:(Sim.Engine.now (Bgp.Network.engine t.net))
      ~span:"meas.probe"
      [ ("n", Obs.Trace.Int n) ]

let responder t ip =
  match As_graph.owner_of_address (Bgp.Network.graph t.net) ip with
  | Some asn -> Some asn
  | None ->
      (* Addresses inside production/sentinel prefixes rather than router
         space: the originating AS answers. *)
      Option.map snd (Bgp.Network.owner_of_address t.net ip)

let reply_delivers t ~from_ ~to_ip =
  Forward.delivers t.net t.failures ~src:from_ ~dst:to_ip

let ping_from t ~src ~src_ip ~dst =
  count t 1;
  let request = Forward.walk t.net t.failures ~src ~dst () in
  match request.Forward.outcome with
  | Forward.Delivered -> begin
      match responder t dst with
      | Some responder_as -> reply_delivers t ~from_:responder_as ~to_ip:src_ip
      | None -> false
    end
  | Forward.No_route _ | Forward.Loop | Forward.Dropped _ -> false

let ping t ~src ~dst = ping_from t ~src ~src_ip:(Forward.probe_address t.net src) ~dst

let spoofed_ping t ~sender ~spoof_src ~dst =
  count t 1;
  let request = Forward.walk t.net t.failures ~src:sender ~dst () in
  match request.Forward.outcome with
  | Forward.Delivered -> begin
      match responder t dst with
      | Some responder_as -> reply_delivers t ~from_:responder_as ~to_ip:spoof_src
      | None -> false
    end
  | Forward.No_route _ | Forward.Loop | Forward.Dropped _ -> false

type trace_hop = { hop : Forward.hop; responded : bool }

type trace = {
  hops : trace_hop list;
  reached : bool;
  outcome : Forward.outcome;
}

let last_responsive_as trace =
  List.fold_left
    (fun acc th -> if th.responded then Some th.hop.Forward.asn else acc)
    None trace.hops

let visible_path trace =
  let rec take acc = function
    | [] -> List.rev acc
    | th :: rest -> if th.responded then take (th.hop.Forward.asn :: acc) rest else take acc rest
  in
  (* Hops whose replies were lost appear as '*' in real traceroute output;
     the visible AS path is the responsive subsequence. *)
  take [] trace.hops

let trace_with_replies t ~src ~reply_to ~dst =
  let walk = Forward.walk t.net t.failures ~src ~dst () in
  count t (List.length walk.Forward.hops);
  (* The hop a failure consumed the packet at never saw it with a live
     TTL, so it cannot answer. *)
  let dropped_at =
    match walk.Forward.outcome with
    | Forward.Dropped { at; _ } -> Some at
    | Forward.Delivered | Forward.No_route _ | Forward.Loop -> None
  in
  let hops =
    List.map
      (fun (h : Forward.hop) ->
        let responded =
          (* The source hop trivially "responds"; other hops' TTL-expired
             replies must route back to the measuring address. *)
          (match dropped_at with
          | Some at when Asn.equal at h.Forward.asn -> false
          | Some _ | None ->
              Asn.equal h.Forward.asn src
              || reply_delivers t ~from_:h.Forward.asn ~to_ip:reply_to)
        in
        { hop = h; responded })
      walk.Forward.hops
  in
  let reached =
    match walk.Forward.outcome with
    | Forward.Delivered -> begin
        match responder t dst with
        | Some responder_as -> reply_delivers t ~from_:responder_as ~to_ip:reply_to
        | None -> false
      end
    | Forward.No_route _ | Forward.Loop | Forward.Dropped _ -> false
  in
  { hops; reached; outcome = walk.Forward.outcome }

let traceroute t ~src ~dst =
  trace_with_replies t ~src ~reply_to:(Forward.probe_address t.net src) ~dst

let spoofed_traceroute t ~sender ~spoof_src ~dst =
  trace_with_replies t ~src:sender ~reply_to:spoof_src ~dst

let reverse_traceroute t ~vantage_points ~from_ ~to_ip =
  let target_address = Forward.probe_address t.net from_ in
  let some_vp_reaches =
    List.exists
      (fun vp -> Forward.delivers t.net t.failures ~src:vp ~dst:target_address)
      vantage_points
  in
  if not some_vp_reaches then None
  else begin
    (* Amortized cost from the paper's atlas accounting: ~10 IP-option
       probes plus ~2 supporting traceroutes of ~8 hops. *)
    count t (10 + 16);
    let walk = Forward.walk t.net t.failures ~src:from_ ~dst:to_ip () in
    let hops = List.map (fun h -> { hop = h; responded = true }) walk.Forward.hops in
    let reached =
      match walk.Forward.outcome with
      | Forward.Delivered -> true
      | Forward.No_route _ | Forward.Loop | Forward.Dropped _ -> false
    in
    Some { hops; reached; outcome = walk.Forward.outcome }
  end
