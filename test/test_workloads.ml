(* Outage generator calibration and scenario builders. *)

open Net
open Workloads

let test_duration_calibration () =
  let durations = Outage_gen.durations ~seed:42 ~n:10308 () in
  let median = Stats.Descriptive.median durations in
  Alcotest.(check bool)
    (Printf.sprintf "median near the floor (got %.0f)" median)
    true
    (median >= 90.0 && median <= 150.0);
  let le_10min = Stats.Descriptive.fraction (fun d -> d <= 600.0) durations in
  Alcotest.(check bool)
    (Printf.sprintf "more than 90%% of events <= 10 min (got %.3f)" le_10min)
    true (le_10min >= 0.90);
  let share = Outage_gen.unavailability_share_above durations ~threshold:600.0 in
  Alcotest.(check bool)
    (Printf.sprintf "long outages dominate unavailability (got %.2f)" share)
    true
    (share >= 0.65 && share <= 0.95);
  let min_d = fst (Stats.Descriptive.min_max durations) in
  Alcotest.(check bool) "floor respected" true (min_d >= 90.0)

let test_duration_survival () =
  let durations = Outage_gen.durations ~seed:42 ~n:10308 () in
  let s55 =
    Lifeguard.Decide.Residual.survival_fraction ~durations ~elapsed:300.0 ~horizon:300.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "of 5-min outages, ~half last 5 more (got %.2f)" s55)
    true
    (s55 >= 0.40 && s55 <= 0.62)

let test_shape_mix () =
  let rng = Prng.create ~seed:17 in
  let n = 5000 in
  let shapes = List.init n (fun _ -> Outage_gen.shape rng) in
  let frac pred = Stats.Descriptive.fraction_list pred shapes in
  let close msg expected got =
    Alcotest.(check bool) (Printf.sprintf "%s (expected %.2f, got %.2f)" msg expected got) true
      (Float.abs (expected -. got) < 0.03)
  in
  close "reverse share" 0.40 (frac (fun s -> s.Outage_gen.direction = Outage_gen.Reverse));
  close "forward share" 0.40 (frac (fun s -> s.Outage_gen.direction = Outage_gen.Forward));
  close "bidirectional share" 0.20
    (frac (fun s -> s.Outage_gen.direction = Outage_gen.Bidirectional));
  close "link share" 0.38 (frac (fun s -> s.Outage_gen.on_link))

let test_planetlab_scenario () =
  let bed = Scenarios.planetlab ~ases:80 ~sites:6 ~target_count:5 ~seed:7 () in
  Alcotest.(check int) "sites" 6 (List.length bed.Scenarios.vantage_points);
  Alcotest.(check int) "targets" 5 (List.length bed.Scenarios.targets);
  (* All vantage points are stubs; all targets transit. *)
  List.iter
    (fun vp ->
      Alcotest.(check bool) "vp is a stub" true (Topology.As_graph.is_stub bed.Scenarios.graph vp))
    bed.Scenarios.vantage_points;
  List.iter
    (fun t ->
      Alcotest.(check bool) "target is transit" false
        (Topology.As_graph.is_stub bed.Scenarios.graph t))
    bed.Scenarios.targets;
  (* Converged infrastructure: VP pairs can ping each other. *)
  let vp1 = List.nth bed.Scenarios.vantage_points 0 in
  let vp2 = List.nth bed.Scenarios.vantage_points 1 in
  Alcotest.(check bool) "mesh connectivity" true
    (Dataplane.Probe.ping bed.Scenarios.probe ~src:vp1
       ~dst:(Dataplane.Forward.probe_address bed.Scenarios.net vp2))

let test_bgpmux_scenario () =
  let mux = Scenarios.bgpmux ~ases:80 ~provider_count:3 ~feed_count:10 ~seed:7 () in
  Alcotest.(check int) "providers" 3 (List.length mux.Scenarios.providers);
  Alcotest.(check int) "feeds" 10 (List.length mux.Scenarios.feeds);
  Lifeguard.Remediate.announce_baseline mux.Scenarios.bed.Scenarios.net mux.Scenarios.plan;
  Bgp.Network.run_until_quiet mux.Scenarios.bed.Scenarios.net;
  (* Every feed can reach the production prefix. *)
  List.iter
    (fun feed ->
      Alcotest.(check bool)
        (Printf.sprintf "feed %s routed" (Asn.to_string feed))
        true
        (Bgp.Network.best_route mux.Scenarios.bed.Scenarios.net feed
           Scenarios.production_prefix
        <> None))
    mux.Scenarios.feeds;
  let harvest = Scenarios.harvest_on_path_ases mux in
  Alcotest.(check bool) "harvest nonempty" true (harvest <> []);
  List.iter
    (fun h ->
      Alcotest.(check bool) "harvest excludes providers" false
        (List.exists (Asn.equal h) mux.Scenarios.providers))
    harvest

let test_case_study_initial_state () =
  let cs = Scenarios.Case_study.build () in
  let open Scenarios.Case_study in
  Lifeguard.Remediate.announce_baseline cs.bed.Scenarios.net cs.plan;
  Bgp.Network.run_until_quiet cs.bed.Scenarios.net;
  (* The Taiwanese site initially prefers the commercial chain through
     UUNET (shorter), exactly as on Oct 3, 2011, 8:15pm. *)
  match Bgp.Network.best_route cs.bed.Scenarios.net cs.taiwan Scenarios.production_prefix with
  | Some entry ->
      let path = entry.Bgp.Route.ann.Bgp.Route.path in
      Alcotest.(check bool) "via UUNET" true (Bgp.As_path.contains cs.uunet path);
      Alcotest.(check bool) "not via the academic chain" false
        (Bgp.As_path.contains cs.tanet path)
  | None -> Alcotest.fail "taiwan has no route"

let test_placement () =
  let bed = Scenarios.planetlab ~ases:80 ~sites:6 ~seed:7 () in
  let rng = Prng.create ~seed:11 in
  let src = List.nth bed.Scenarios.vantage_points 0 in
  let dst = List.nth bed.Scenarios.vantage_points 1 in
  let shape = { Outage_gen.direction = Outage_gen.Reverse; on_link = false; duration = 600.0 } in
  match Scenarios.Placement.on_path rng bed ~src ~dst ~shape () with
  | None -> Alcotest.fail "no placement found"
  | Some placed ->
      (* The failure must actually break dst -> src while src -> dst
         still works. *)
      Dataplane.Failure.add bed.Scenarios.failures placed.Scenarios.Placement.spec;
      Alcotest.(check bool) "reverse direction broken" false
        (Dataplane.Forward.delivers bed.Scenarios.net bed.Scenarios.failures ~src:dst
           ~dst:(Dataplane.Forward.probe_address bed.Scenarios.net src));
      Alcotest.(check bool) "forward direction intact" true
        (Dataplane.Forward.delivers bed.Scenarios.net bed.Scenarios.failures ~src
           ~dst:(Dataplane.Forward.probe_address bed.Scenarios.net dst));
      Dataplane.Failure.remove bed.Scenarios.failures placed.Scenarios.Placement.spec

let test_settle_advances_clock () =
  let bed = Scenarios.planetlab ~ases:80 ~sites:4 ~seed:7 () in
  let before = Sim.Engine.now bed.Scenarios.engine in
  Scenarios.settle bed ~seconds:100.0;
  Alcotest.(check bool) "clock advanced" true
    (Sim.Engine.now bed.Scenarios.engine >= before +. 100.0)

let prop_durations_deterministic =
  QCheck.Test.make ~name:"outage durations deterministic per seed" ~count:20
    QCheck.small_int (fun seed ->
      Outage_gen.durations ~seed ~n:50 () = Outage_gen.durations ~seed ~n:50 ())

let suite =
  [
    Alcotest.test_case "duration calibration (Fig. 1 anchors)" `Quick test_duration_calibration;
    Alcotest.test_case "duration survival (Fig. 5 anchor)" `Quick test_duration_survival;
    Alcotest.test_case "failure shape mix" `Quick test_shape_mix;
    Alcotest.test_case "planetlab scenario" `Quick test_planetlab_scenario;
    Alcotest.test_case "bgpmux scenario" `Quick test_bgpmux_scenario;
    Alcotest.test_case "case study initial state" `Quick test_case_study_initial_state;
    Alcotest.test_case "failure placement" `Quick test_placement;
    Alcotest.test_case "settle advances clock" `Quick test_settle_advances_clock;
    QCheck_alcotest.to_alcotest prop_durations_deterministic;
  ]
