(** Event-driven BGP simulator: announcements, RIBs, Gao–Rexford policy,
    the decision process, MRAI-paced propagation, route collectors and
    convergence metrics. BGP loop prevention — the mechanism LIFEGUARD's
    poisoning exploits — lives in {!Policy.import}. *)

module Community = Community
module As_path = As_path
module Path_store = Path_store
module Route = Route
module Policy = Policy
module Decision = Decision
module Speaker = Speaker
module Network = Network
module Faults = Faults
module Convergence = Convergence
