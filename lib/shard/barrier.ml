(* Barrier accounting (Obs): barriers executed, swept messages split by
   whether they cross a shard boundary, and the simulated width of each
   window. All simulation-derived and merged commutatively across domain
   shards, so metrics never perturb the byte-identical --shards/--jobs
   discipline. *)
let m_barriers = Obs.Metrics.counter "shard.barriers"
let m_cut = Obs.Metrics.counter "shard.cut_msgs"
let m_local = Obs.Metrics.counter "shard.local_msgs"
let m_wait = Obs.Metrics.histogram "shard.barrier_wait"

type 'msg hooks = {
  next_work : int -> float option;
  advance : int -> before:float -> unit;
  drain : int -> 'msg list;
  inject : 'msg -> unit;
  arrival : 'msg -> float;
  src_shard : 'msg -> int;
  dst_shard : 'msg -> int;
  order : 'msg -> 'msg -> int;
}

type 'msg t = {
  control : Sim.Engine.t;
  lookahead : float;
  shards : int;
  indices : int list;
  hooks : 'msg hooks;
  record_history : bool;
  mutable pool : Par.Pool.t option;
  mutable backlog : 'msg list;  (** sorted by (arrival, order), oldest sweep first *)
  mutable backlog_len : int;
  mutable frontier : float;
  mutable armed : bool;
  mutable barriers : int;
  mutable cut_msgs : int;
  mutable history : (float * int * int) list;  (** newest first *)
}

let create ~control ~lookahead ~shards ?(record_history = false) hooks =
  if lookahead <= 0.0 || not (Float.is_finite lookahead) then
    invalid_arg "Barrier.create: lookahead must be positive and finite";
  if shards < 1 then invalid_arg "Barrier.create: shards must be >= 1";
  {
    control;
    lookahead;
    shards;
    indices = List.init shards (fun i -> i);
    hooks;
    record_history;
    pool = None;
    backlog = [];
    backlog_len = 0;
    frontier = Sim.Engine.now control;
    armed = false;
    barriers = 0;
    cut_msgs = 0;
    history = [];
  }

let frontier t = t.frontier
let backlog t = t.backlog_len
let barriers t = t.barriers
let cut_messages t = t.cut_msgs
let history t = List.rev t.history
let set_pool t pool = t.pool <- pool

(* Canonical message order: arrival time first, then the embedder's
   (src, dst, payload) tiebreak. The sort below is stable and equal keys
   imply equal (src, dst) — hence one source shard — so per-source
   emission order survives the merge, and the injected sequence is a
   pure function of the messages themselves, not of the partitioning. *)
let compare_msgs hooks a b =
  match Float.compare (hooks.arrival a) (hooks.arrival b) with
  | 0 -> hooks.order a b
  | c -> c

(* Drain every outbox (in shard-index order) into the backlog. Fresh
   messages always arrive at or after every not-yet-due backlog entry's
   window, and [List.merge] keeps the left operand first on ties, so
   earlier sweeps stay ahead of later ones at equal keys. *)
let sweep t =
  let fresh =
    List.concat_map
      (fun i ->
        let msgs = t.hooks.drain i in
        List.iter
          (fun m ->
            if t.hooks.src_shard m <> t.hooks.dst_shard m then begin
              t.cut_msgs <- t.cut_msgs + 1;
              Obs.Metrics.incr m_cut
            end
            else Obs.Metrics.incr m_local)
          msgs;
        msgs)
      t.indices
  in
  match fresh with
  | [] -> ()
  | _ ->
      let cmp = compare_msgs t.hooks in
      let fresh = List.stable_sort cmp fresh in
      t.backlog <- List.merge cmp t.backlog fresh;
      t.backlog_len <- t.backlog_len + List.length fresh

let work_min t =
  let m =
    List.fold_left
      (fun acc i ->
        match (t.hooks.next_work i, acc) with
        | Some w, Some a -> Some (Float.min w a)
        | Some w, None -> Some w
        | None, acc -> acc)
      None t.indices
  in
  match (t.backlog, m) with
  | [], m -> m
  | b :: _, Some a -> Some (Float.min (t.hooks.arrival b) a)
  | b :: _, None -> Some (t.hooks.arrival b)

let inject_due t ~before =
  let rec loop injected cut = function
    | m :: rest when t.hooks.arrival m < before ->
        t.hooks.inject m;
        loop (injected + 1)
          (if t.hooks.src_shard m <> t.hooks.dst_shard m then cut + 1 else cut)
          rest
    | rest ->
        t.backlog <- rest;
        t.backlog_len <- t.backlog_len - injected;
        (injected, cut)
  in
  loop 0 0 t.backlog

let advance_all t ~before =
  match t.pool with
  | None -> List.iter (fun i -> t.hooks.advance i ~before) t.indices
  | Some pool -> ignore (Par.Pool.map pool (fun i -> t.hooks.advance i ~before) t.indices)

(* One window [frontier, until): inject due messages in canonical order,
   run every shard up to the barrier (in parallel when pooled), then
   sweep what the window emitted. [work] is the earliest pending work —
   a window that contains none of it is a frontier hop, not a barrier. *)
let run_window t ~work ~until =
  let start = t.frontier in
  let injected, cut_injected = inject_due t ~before:until in
  advance_all t ~before:until;
  sweep t;
  t.frontier <- until;
  if injected > 0 || work < until then begin
    t.barriers <- t.barriers + 1;
    Obs.Metrics.incr m_barriers;
    Obs.Metrics.observe m_wait (until -. start);
    if Obs.Trace.on () then
      Obs.Trace.event ~ts:start ~span:"shard.barrier"
        [
          ("until", Obs.Trace.Float until);
          ("injected", Obs.Trace.Int injected);
          ("cut", Obs.Trace.Int cut_injected);
        ];
    if t.record_history then t.history <- (start, injected, cut_injected) :: t.history
  end

let rec fire t =
  t.armed <- false;
  sweep t;
  match work_min t with
  | None -> ()  (* dormant until poked *)
  | Some m ->
      let m = Float.max m t.frontier in
      let b = m +. t.lookahead in
      (* Never advance the shards past the control engine's next event:
         control-plane reads and writes must always find shard clocks at
         or behind their own time. *)
      let b =
        match Sim.Engine.next_time t.control with
        | Some tc when tc < b -> Float.max tc t.frontier
        | _ -> b
      in
      if b > t.frontier then run_window t ~work:m ~until:b;
      (match work_min t with
      | Some _ -> arm t ~at:b
      | None -> ())

and arm t ~at =
  t.armed <- true;
  let at = Float.max at (Sim.Engine.now t.control) in
  Sim.Engine.schedule t.control ~at (fun () -> fire t)

let poke t = if not t.armed then arm t ~at:(Sim.Engine.now t.control)

let sync_all t ~now =
  while t.frontier < now do
    sweep t;
    let until =
      match work_min t with
      | Some m when m < now ->
          Float.min now (Float.max m t.frontier +. t.lookahead)
      | _ -> now
    in
    let work = match work_min t with Some m -> m | None -> infinity in
    run_window t ~work ~until
  done
