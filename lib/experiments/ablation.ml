(** Ablations of the design choices the paper motivates.

    Three knobs, each varied in isolation on the same poisoning workload:

    - {b Baseline prepending} (the §3.1.1 insight): poisoning from a plain
      [O] baseline vs the [O-O-O] baseline. Measured by the share of
      unaffected collector peers that reconverge instantly and the mean
      updates per peer.
    - {b MRAI}: the min-route-advertisement interval drives convergence
      time; halving it speeds convergence at the cost of more updates.
    - {b RIB-to-FIB install latency}: with slower FIB installs the data
      plane lags the control plane longer, lengthening the window where
      convergence can drop packets (§5.2's loss).

    Each row reports medians over the same set of poisonings. *)

open Net
open Workloads

type row = {
  label : string;
  instant_unaffected : float;  (** Fraction of unaffected peers converging instantly. *)
  mean_updates : float;
  global_median : float;  (** Median global convergence time (s). *)
  structural_loss : float;  (** Mean structural loss rate across poisonings. *)
}

type result = { rows : row list }

let production = Scenarios.production_prefix

(* One configuration: build a fresh mux world and poison [n] targets,
   measuring convergence and data-plane loss. *)
let measure ~label ~seed ~ases ~n ~mrai ~fib_install_delay ~prepend =
  (* Data-plane sampling only targets the production prefix, so the
     world needs no infrastructure prefixes. *)
  let mux =
    Scenarios.bgpmux ~ases ~mrai ~fib_install_delay
      ~infrastructure:Scenarios.No_infrastructure ~seed ()
  in
  let bed = mux.Scenarios.bed in
  let net = bed.Scenarios.net in
  let engine = bed.Scenarios.engine in
  let origin = mux.Scenarios.origin in
  let baseline =
    if prepend then Bgp.As_path.prepended ~origin ~copies:3
    else Bgp.As_path.plain ~origin
  in
  Bgp.Network.announce net ~origin ~prefix:production
    ~per_neighbor:(fun _ -> Some baseline)
    ();
  Bgp.Network.run_until_quiet net;
  let harvest = Scenarios.harvest_on_path_ases mux in
  let rng = Prng.create ~seed:(seed + 9) in
  let targets =
    let arr = Array.of_list harvest in
    Prng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 (min n (Array.length arr)))
  in
  let samplers = bed.Scenarios.vantage_points in
  let instants = ref [] and updates = ref [] and globals = ref [] and losses = ref [] in
  List.iter
    (fun target ->
      Bgp.Network.announce net ~origin ~prefix:production
        ~per_neighbor:(fun _ -> Some baseline)
        ();
      Bgp.Network.run_until_quiet net;
      Scenarios.settle bed ~seconds:(2.0 *. mrai +. 60.0);
      let affected =
        List.fold_left
          (fun acc peer ->
            match Bgp.Network.best_route net peer production with
            | Some e when Bgp.As_path.traverses ~origin ~target e.Bgp.Route.ann.Bgp.Route.path
              ->
                Asn.Set.add peer acc
            | Some _ | None -> acc)
          Asn.Set.empty mux.Scenarios.feeds
      in
      Bgp.Network.Collector.clear mux.Scenarios.collector;
      let t0 = Sim.Engine.now engine in
      (* Sample the data plane every 2 s through convergence. *)
      let lost = ref 0 and total = ref 0 in
      Sim.Engine.schedule_every engine ~every:2.0 ~until:(t0 +. 120.0) (fun _ ->
          List.iter
            (fun vp ->
              incr total;
              if
                not
                  (Dataplane.Forward.delivers net bed.Scenarios.failures ~src:vp
                     ~dst:(Prefix.nth_address production 1))
              then incr lost)
            samplers;
          `Continue);
      Bgp.Network.announce net ~origin ~prefix:production
        ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin ~poison:target))
        ();
      Bgp.Network.run_until_quiet net;
      Sim.Engine.run ~until:(t0 +. 121.0) engine;
      let reports =
        Bgp.Convergence.analyze mux.Scenarios.collector ~event_time:t0 ~prefix:production
          ~affected:(fun p -> Asn.Set.mem p affected)
        |> List.filter (fun r -> r.Bgp.Convergence.has_final_route)
      in
      let unaffected = List.filter (fun r -> not r.Bgp.Convergence.affected) reports in
      if unaffected <> [] then
        instants := Bgp.Convergence.fraction_instant unaffected :: !instants;
      if reports <> [] then updates := Bgp.Convergence.mean_updates reports :: !updates;
      (match Bgp.Convergence.global_convergence_time reports with
      | Some g -> globals := g :: !globals
      | None -> ());
      if !total > 0 then
        losses := (float_of_int !lost /. float_of_int !total) :: !losses)
    targets;
  let mean l = if l = [] then 0.0 else Stats.Descriptive.mean (Array.of_list l) in
  let median l = if l = [] then 0.0 else Stats.Descriptive.median (Array.of_list l) in
  {
    label;
    instant_unaffected = mean !instants;
    mean_updates = mean !updates;
    global_median = median !globals;
    structural_loss = mean !losses;
  }

let run ?(ases = 200) ?(poisons = 8) ?(jobs = 1) ~seed () =
  (* [measure] already builds a fresh world per configuration, so each
     row is an independent trial for the pool. *)
  let m ~label ~mrai ~fib_install_delay ~prepend () =
    measure ~label ~seed ~ases ~n:poisons ~mrai ~fib_install_delay ~prepend
  in
  let rows =
    Runner.run_trials ~jobs
      [
        m ~label:"baseline: prepend, MRAI 30, FIB instant" ~mrai:30.0 ~fib_install_delay:0.0
          ~prepend:true;
        m ~label:"no prepending" ~mrai:30.0 ~fib_install_delay:0.0 ~prepend:false;
        m ~label:"MRAI 15 s" ~mrai:15.0 ~fib_install_delay:0.0 ~prepend:true;
        m ~label:"MRAI 5 s" ~mrai:5.0 ~fib_install_delay:0.0 ~prepend:true;
        m ~label:"FIB install lag 6 s" ~mrai:30.0 ~fib_install_delay:6.0 ~prepend:true;
        m ~label:"no prepend + FIB lag 6 s" ~mrai:30.0 ~fib_install_delay:6.0 ~prepend:false;
      ]
  in
  { rows }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Ablation: prepending, MRAI, FIB install latency"
      ~columns:
        [ "configuration"; "instant (unaffected)"; "updates/peer"; "global median (s)"; "loss" ]
  in
  List.iter
    (fun row ->
      Stats.Table.add_row t
        [
          row.label;
          Stats.Table.cell_pct row.instant_unaffected;
          Stats.Table.cell_float row.mean_updates;
          Stats.Table.cell_float ~decimals:0 row.global_median;
          Stats.Table.cell_pct ~decimals:2 row.structural_loss;
        ])
    r.rows;
  [ t ]
