lib/net/net.ml: Asn Ipv4 Prefix Prefix_trie
