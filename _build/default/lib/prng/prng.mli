(** Deterministic pseudo-random number generation for reproducible
    experiments.

    Every experiment in this repository draws its randomness from a {!t}
    created from an explicit integer seed, so that each table and figure is
    exactly reproducible. The generator is xoshiro256** seeded through
    splitmix64, a combination with good statistical quality and a tiny,
    dependency-free implementation. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. Equal
    seeds yield identical streams. *)

val split : t -> t
(** [split t] derives an independent child generator from [t], advancing
    [t]. Children of distinct draws are statistically independent, which
    lets sub-experiments consume randomness without perturbing each
    other. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    produce identical streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val range_float : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. Requires [lo <= hi]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [min k (Array.length arr)]
    distinct elements of [arr], in random order. *)

(** Samplers for the distributions used by the outage and delay models. *)
module Dist : sig
  val exponential : t -> mean:float -> float
  (** Exponential with the given mean. *)

  val pareto : t -> shape:float -> scale:float -> float
  (** Pareto (type I) with minimum [scale] and tail index [shape]; heavy
      tails for [shape <= 2]. *)

  val lognormal : t -> mu:float -> sigma:float -> float
  (** Log-normal: [exp] of a normal with parameters [mu], [sigma]. *)

  val normal : t -> mu:float -> sigma:float -> float
  (** Normal via Box–Muller. *)

  val weibull : t -> shape:float -> scale:float -> float
  (** Weibull; [shape < 1] gives decreasing hazard, matching the
      "the longer it lasted, the longer it will last" behaviour of Internet
      outages (paper Fig. 5). *)

  val mixture : t -> (float * (t -> float)) list -> float
  (** [mixture t components] picks a component with the given weights
      (which must sum to ~1) and samples it. *)

  val zipf : t -> n:int -> s:float -> int
  (** Zipf-distributed rank in [\[1, n\]] with exponent [s]; used for
      power-law degree targets in topology generation. *)
end
