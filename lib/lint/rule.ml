type t =
  | Dom_mut
  | Det_random
  | Det_clock
  | Det_polyeq
  | Det_hashkey
  | Perf_append
  | Perf_scan
  | Perf_structeq
  | Mli_missing
  | Obs_printf
  | Rob_exn
  | Rob_snapshot
  | Eff_clock
  | Eff_random
  | Eff_globalmut
  | Plan_stale

let all =
  [ Dom_mut; Det_random; Det_clock; Det_polyeq; Det_hashkey; Perf_append; Perf_scan;
    Perf_structeq; Mli_missing; Obs_printf; Rob_exn; Rob_snapshot; Eff_clock; Eff_random;
    Eff_globalmut; Plan_stale ]

let id = function
  | Dom_mut -> "LG-DOM-MUT"
  | Det_random -> "LG-DET-RANDOM"
  | Det_clock -> "LG-DET-CLOCK"
  | Det_polyeq -> "LG-DET-POLYEQ"
  | Det_hashkey -> "LG-DET-HASHKEY"
  | Perf_append -> "LG-PERF-APPEND"
  | Perf_scan -> "LG-PERF-SCAN"
  | Perf_structeq -> "LG-PERF-STRUCTEQ"
  | Mli_missing -> "LG-MLI-MISSING"
  | Obs_printf -> "LG-OBS-PRINTF"
  | Rob_exn -> "LG-ROB-EXN"
  | Rob_snapshot -> "LG-ROB-SNAPSHOT"
  | Eff_clock -> "LG-EFF-CLOCK"
  | Eff_random -> "LG-EFF-RANDOM"
  | Eff_globalmut -> "LG-EFF-GLOBALMUT"
  | Plan_stale -> "LG-PLAN-STALE"

let of_id s =
  let rec find = function
    | [] -> None
    | r :: rest -> if String.equal (id r) s then Some r else find rest
  in
  find all

let describe = function
  | Dom_mut ->
      "module-level mutable state in a library reachable from Par-submitted closures; \
       breaks the byte-identical --jobs invariant"
  | Det_random -> "Random.* outside lib/prng; experiments must draw from the seeded Prng"
  | Det_clock -> "wall-clock read (Sys.time / Unix.gettimeofday / Unix.time) in a library"
  | Det_polyeq ->
      "polymorphic compare / Hashtbl.hash / option-sentinel (in)equality; use the \
       module-specific compare or Option.is_some/is_none"
  | Det_hashkey ->
      "Hashtbl keyed by a structured or boxed type; polymorphic hash walks the whole key \
       — use int keys or a keyed table module (e.g. Asn.Table)"
  | Perf_append ->
      "list append (@) building an accumulator inside a let rec or fold; quadratic — \
       accumulate with :: and List.rev, or use List.concat_map"
  | Perf_scan ->
      "List.mem/List.assoc inside a let rec or iteration closure; quadratic scan — \
       use a Set/Map/Hashtbl"
  | Perf_structeq ->
      "structural =/compare on an interned BGP value (As_path.t / Route entry fields) \
       outside lib/bgp; defeats O(1) hash-consed equality — use As_path.equal / \
       Route.announcement_equal"
  | Mli_missing -> "library module without an .mli; accidental surface"
  | Obs_printf ->
      "bare stdout printing (Printf.printf / Format.printf / print_endline) in a library; \
       route diagnostics through Obs tracing and results through the table writers"
  | Rob_exn ->
      "catch-all exception handler (try ... with _ ->) in a library; swallows programming \
       errors along with the expected failure — match the specific exceptions"
  | Rob_snapshot ->
      "mutable or container-typed record field in a file defining a snapshot [capture] \
       that capture's body never reads; state the crash-recovery snapshot would silently \
       reset on restore — capture the field or move it out of the snapshotted record"
  | Eff_clock ->
      "exported library function transitively reaches the wall clock (through any number \
       of wrappers) outside Obs.Clock; breaks determinism — thread simulation time or the \
       injected Obs.Clock instead"
  | Eff_random ->
      "exported library function transitively reaches Random outside lib/prng; draws \
       from the global, --jobs-dependent stream — thread a seeded Prng instead"
  | Eff_globalmut ->
      "exported library function transitively reaches module-level mutable state outside \
       the declared-exempt modules; breaks the share-nothing byte-identical --jobs \
       invariant — allocate the state per world and thread it"
  | Plan_stale ->
      "planner entry point (exported def in a plan subsystem's planner.ml) reaches the \
       clock, Random, or module-level mutable state, directly or transitively; \
       precomputed plans must be a pure function of the world or they are stale the \
       moment they are built — take every input as an argument"
