(** Injected wall-clock source for span timing.

    Libraries must not read the wall clock directly (rule [LG-DET-CLOCK]):
    a wall-clock read inside a trial closure would make the trace
    timestamp stream — though never the experiment tables — depend on the
    machine. Instead the outermost binary ([bench/main] or
    [bin/lifeguard_cli]) installs a source once at startup, and library
    code asks {!now}. When no source is installed, {!now} is [0.], so
    span durations degrade to zero rather than to nondeterminism. *)

val set : (unit -> float) -> unit
(** Install the wall-clock source (e.g. [Unix.gettimeofday]). Call once,
    from the outermost binary, before any domains are spawned. *)

val clear : unit -> unit
(** Remove the source; {!now} returns [0.] again. *)

val now : unit -> float
(** Current wall-clock reading from the installed source, or [0.] when
    none is installed. *)
