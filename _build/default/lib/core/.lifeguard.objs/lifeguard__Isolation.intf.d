lib/core/isolation.mli: Asn Dataplane Format Ipv4 Measurement Net
