(** Failure injection.

    The paper targets {e silent} failures: a router keeps announcing a BGP
    route but drops the packets ([Data_only] mode — the control plane
    never reacts, which is exactly why poisoning is needed). Failures can
    also take the control plane down with them ([Control_and_data], an
    ordinary link/router outage that BGP withdraws around). A failure can
    be scoped to an AS or an inter-AS link, restricted to one traversal
    direction of a link, and restricted to packets heading into one
    destination prefix — the combination that produces the paper's
    unidirectional "reverse-path" failures (§4.1): traffic toward the
    monitored origin dies inside the failed AS while the forward direction
    still works. *)

open Net

type scope =
  | Node of Asn.t  (** Packets transiting (or arriving at) this AS. *)
  | Link of Asn.t * Asn.t  (** Either traversal direction of the link. *)
  | Link_dir of Asn.t * Asn.t  (** Only [fst -> snd] traversals. *)

type mode =
  | Data_only  (** Silent: BGP keeps announcing; packets die. *)
  | Control_and_data  (** BGP sessions drop too. *)

type spec = {
  scope : scope;
  mode : mode;
  toward : Prefix.t option;
      (** When set, only packets destined into this prefix are affected —
          a unidirectional failure with respect to that origin. *)
}

val spec : ?mode:mode -> ?toward:Prefix.t -> scope -> spec
(** [mode] defaults to [Data_only] (the interesting case). *)

val pp_spec : Format.formatter -> spec -> unit

type set
(** A mutable collection of active failures. *)

val create : unit -> set
val is_empty : set -> bool
val active : set -> spec list

val add : set -> spec -> unit
val remove : set -> spec -> unit
(** Remove a failure equal to [spec]; no-op when absent. *)

val clear : set -> unit

val blocks_hop : set -> from_:Asn.t -> to_:Asn.t -> dst:Ipv4.t -> spec option
(** Does any active failure kill a packet traversing the [from_ -> to_]
    link and then transiting [to_], heading to [dst]? Returns the first
    matching failure. Node failures match when [to_] is the failed AS;
    link failures when the pair matches. *)

val blocks_source : set -> Asn.t -> dst:Ipv4.t -> spec option
(** Does a node failure at the packet's first AS kill it on departure? *)

val inject : Bgp.Network.t -> set -> spec -> unit
(** Activate a failure: adds it to the set and, for [Control_and_data],
    takes the BGP sessions down ({!Bgp.Network.fail_link} /
    [fail_node]). *)

val heal : Bgp.Network.t -> set -> spec -> unit
(** Deactivate: removes from the set and restores BGP sessions for
    [Control_and_data] failures. *)
