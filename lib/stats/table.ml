type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* stored in reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: cell count does not match columns";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.contents buf

let print ?(out = Format.std_formatter) t =
  Format.pp_print_string out (render t);
  Format.pp_print_newline out ()

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals (100.0 *. x)
let cell_int n = string_of_int n
