(** BGP AS paths, including the poisoning and prepending constructions at
    the heart of LIFEGUARD's remediation.

    A path lists ASes nearest-first: the head is the neighbor that
    announced the route and the last element is the origin. BGP's loop
    prevention — an AS rejects any path already containing its own number —
    is what poisoning exploits: the origin [O] announces [O-A-O] so that
    [A] drops the route and other ASes route around it.

    Representation: a path is a hash-consed node — an immutable ASN array
    plus a cached salted structural hash and an interner id. Constructors
    build uninterned nodes; a per-world {!Path_store} deduplicates them so
    that structurally-equal paths of one world are physically shared and
    {!equal} is O(1) on the hot path. Interner ids are world-local and
    never compared across worlds. *)

open Net

type t
(** Nearest AS first, origin last. Immutable; structurally-equal values
    interned by the same {!Path_store} are physically equal. *)

val empty : t
val is_empty : t -> bool

val origin : t -> Asn.t option
(** The last AS (the originator), if the path is non-empty. O(1). *)

val first_hop : t -> Asn.t option
(** The head of the path — the next-hop AS from the receiver's view. O(1). *)

val length : t -> int
(** Plain hop count, counting duplicates (so prepending lengthens a path,
    which is why it lowers preference). O(1). *)

val prepend : Asn.t -> t -> t
(** Returns a fresh uninterned node; intern it before storing in a RIB. *)

val contains : Asn.t -> t -> bool
val exists : (Asn.t -> bool) -> t -> bool
val fold : ('a -> Asn.t -> 'a) -> 'a -> t -> 'a

val count : Asn.t -> t -> int
(** Occurrences of an AS in the path. *)

val unique_ases : t -> Asn.Set.t

val traversed : origin:Asn.t -> t -> t
(** The portion of the path that traffic actually traverses: everything
    before the first occurrence of [origin]. A poisoned announcement
    [X-Y-O-A-O] contains the poisoned AS [A] textually, but packets only
    cross [X-Y] before reaching the origin — so "does this route avoid
    [A]?" must be asked of the traversed portion. *)

val traverses : origin:Asn.t -> target:Asn.t -> t -> bool
(** [traverses ~origin ~target path]: does the traffic using this path
    actually cross [target]? *)

val plain : origin:Asn.t -> t
(** The ordinary origination path [O]. *)

val prepended : origin:Asn.t -> copies:int -> t
(** [prepended ~origin ~copies:3] is [O-O-O] — the steady-state baseline
    LIFEGUARD announces so that a later poisoned path has equal length. *)

val poisoned : origin:Asn.t -> poison:Asn.t -> t
(** [poisoned ~origin ~poison:a] is [O-A-O]: starts with the origin (so
    neighbors still route toward [O]), contains [A] to trigger its loop
    detection, and ends with the true origin (so registries stay
    consistent). Raises [Invalid_argument] if [poison] equals [origin]. *)

val poisoned_multi : origin:Asn.t -> poisons:Asn.t list -> t
(** [O-A1-...-Ak-O]: poison several ASes at once (used to defeat ASes that
    accept one occurrence of their own number, by inserting it twice —
    see §7.1). *)

val of_list : Asn.t list -> t
(** Build an (uninterned) path from a nearest-first ASN list. *)

val to_list : t -> Asn.t list

val equal : t -> t -> bool
(** Physical equality, then cached-hash comparison, then a structural walk
    only on hash collision — O(1) on values interned by one store, and
    O(1) with high probability on unequal values from anywhere. *)

val hash : t -> int
(** The cached salted structural hash (computed once at construction). *)

val pp : Format.formatter -> t -> unit
(** Prints as ["O A O"] style: space-separated ASNs, nearest first. *)

val to_string : t -> string

(** Interner plumbing for {!Path_store}; not for general use. *)
module Internal : sig
  val id : t -> int
  (** The interner id, or [-1] if the node is uninterned. World-local:
      meaningless to compare across worlds. *)

  val with_id : t -> int -> t
  (** A copy of the node carrying the given interner id (shares the ASN
      array). *)
end
