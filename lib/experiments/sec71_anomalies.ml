(** §7.1 Poisoning anomalies: networks that bend the rules.

    Two real-world quirks limited the paper's poisonings. Some ASes
    disable or relax loop detection to run multi-site networks under one
    ASN — best practice caps the occurrences of their own ASN instead
    (AS286 accepts one), so inserting the ASN {e twice} still poisons
    them. And some providers (Cogent) refuse customer announcements whose
    path contains one of their tier-1 peers, so poisoning a tier-1
    through such a provider does not propagate — but announcing through a
    different provider worked, and 76% of collector peers still found
    alternate paths.

    The experiment builds an Internet where a fraction of transit ASes
    relax loop detection and where one of the origin's providers applies
    Cogent-style filtering, then measures exactly those effects. *)

open Net
open Topology

type result = {
  relaxed_ases : int;
  single_poison_ineffective : int;  (** Relaxed ASes that kept their route. *)
  double_poison_effective : int;  (** ... and dropped it with the ASN doubled. *)
  tier1_poison_via_filter_reached : int;
      (** Feeds with a route when the tier-1 poison goes via the filtering
          provider (propagation suppressed along that branch). *)
  tier1_poison_via_clean_reached : int;  (** Same, via a non-filtering provider. *)
  feeds : int;
}

let production = Workloads.Scenarios.production_prefix

type world = {
  w_net : Bgp.Network.t;
  w_origin : Asn.t;
  w_relaxed : Asn.t list;
  w_feeds : Asn.t list;
  w_filtering_provider : Asn.t;
  w_clean_provider : Asn.t;
  w_tier1 : Asn.t;
}

(* Deterministic world constructor: the PRNG draws (topology seed,
   relaxed sample, feed sample) happen in a fixed order before any
   announcement, so every call with the same arguments yields the same
   graph, quirk assignment and feed list. Everything measured here is
   control-plane state of the production prefix, so no infrastructure
   prefixes are announced. *)
let build_world ~ases ~relaxed_fraction ~seed =
  let rng = Prng.create ~seed in
  let gen = Topo_gen.generate ~params:(Topo_gen.sized ases) ~seed:(Prng.int rng 1000000) () in
  let graph = gen.Topo_gen.graph in
  let origin = Asn.of_int 64500 in
  As_graph.add_as graph ~tier:4 origin;
  (* A Cogent-like provider: it peers with every tier-1 (so a customer
     path naming a tier-1 trips its filter) and sells transit to the
     origin. The clean provider is an ordinary tier-2. *)
  let filtering_provider = Asn.of_int 64174 in
  As_graph.add_as graph ~tier:1 ~routers:3 filtering_provider;
  List.iter
    (fun t1 -> As_graph.add_link graph ~a:filtering_provider ~b:t1 ~rel:Relationship.Peer)
    gen.Topo_gen.tier1;
  let clean_provider = List.hd gen.Topo_gen.tier2 in
  let providers = [ filtering_provider; clean_provider ] in
  List.iter
    (fun p -> As_graph.add_link graph ~a:origin ~b:p ~rel:Relationship.Provider)
    providers;
  (* Quirk assignment: a sample of tier-2/3 transits relax loop detection
     to allow one occurrence of their own ASN; the first provider filters
     customer paths containing its peers. *)
  let transit = Array.of_list (gen.Topo_gen.tier2 @ gen.Topo_gen.tier3) in
  let relaxed =
    Prng.sample_without_replacement rng
      (int_of_float (relaxed_fraction *. float_of_int (Array.length transit)))
      transit
    |> Array.to_list
    |> List.filter (fun a -> not (List.exists (Asn.equal a) providers))
  in
  let relaxed_set = Asn.Set.of_list relaxed in
  let config_of asn_ =
    let base = { Bgp.Policy.default with Bgp.Policy.pref_jitter = 8 } in
    if Asn.Set.mem asn_ relaxed_set then { base with Bgp.Policy.loop_limit = 2 }
    else if Asn.equal asn_ filtering_provider then
      { base with Bgp.Policy.reject_peers_in_customer_paths = true }
    else base
  in
  let engine = Sim.Engine.create () in
  let net = Bgp.Network.create ~engine ~graph ~config_of ~mrai:10.0 () in
  let feeds = Array.to_list (Prng.sample_without_replacement rng 30 transit) in
  {
    w_net = net;
    w_origin = origin;
    w_relaxed = relaxed;
    w_feeds = feeds;
    w_filtering_provider = filtering_provider;
    w_clean_provider = clean_provider;
    w_tier1 = List.hd gen.Topo_gen.tier1;
  }

let baseline w =
  Bgp.Network.announce w.w_net ~origin:w.w_origin ~prefix:production
    ~per_neighbor:(fun _ -> Some (Bgp.As_path.prepended ~origin:w.w_origin ~copies:3))
    ();
  Bgp.Network.run_until_quiet w.w_net

(* Loop-limit quirk for one relaxed AS, in a fresh world: does a single
   poison leave it routed, and does doubling the ASN then strip the
   route? Returns [None] when the AS holds no baseline route. *)
let loop_trial ~ases ~relaxed_fraction ~seed target () =
  let w = build_world ~ases ~relaxed_fraction ~seed in
  baseline w;
  let net = w.w_net in
  if Option.is_none (Bgp.Network.best_route net target production) then None
  else begin
    Bgp.Network.announce net ~origin:w.w_origin ~prefix:production
      ~per_neighbor:(fun _ -> Some (Bgp.As_path.poisoned ~origin:w.w_origin ~poison:target))
      ();
    Bgp.Network.run_until_quiet net;
    let survived = Option.is_some (Bgp.Network.best_route net target production) in
    Bgp.Network.announce net ~origin:w.w_origin ~prefix:production
      ~per_neighbor:(fun _ ->
        Some (Bgp.As_path.poisoned_multi ~origin:w.w_origin ~poisons:[ target; target ]))
      ();
    Bgp.Network.run_until_quiet net;
    let doubled = survived && Option.is_none (Bgp.Network.best_route net target production) in
    Some (survived, doubled)
  end

(* Cogent-style filtering: poison the tier-1 selectively via one provider
   (fresh world) and count feeds still holding any route. *)
let tier1_trial ~ases ~relaxed_fraction ~seed ~via_filtering () =
  let w = build_world ~ases ~relaxed_fraction ~seed in
  baseline w;
  let net = w.w_net in
  let via = if via_filtering then w.w_filtering_provider else w.w_clean_provider in
  Bgp.Network.announce net ~origin:w.w_origin ~prefix:production
    ~per_neighbor:(fun n ->
      if Asn.equal n via then Some (Bgp.As_path.poisoned ~origin:w.w_origin ~poison:w.w_tier1)
      else None)
    ();
  Bgp.Network.run_until_quiet net;
  List.length
    (List.filter (fun f -> Option.is_some (Bgp.Network.best_route net f production)) w.w_feeds)

type outcome = Loop of (bool * bool) option | Tier1 of int

let run ?(ases = 200) ?(relaxed_fraction = 0.3) ?(jobs = 1) ~seed () =
  (* A throwaway scout world (no announcements, so cheap) fixes the
     relaxed and feed samples; the trial list depends only on them. *)
  let scout = build_world ~ases ~relaxed_fraction ~seed in
  let relaxed = scout.w_relaxed in
  let feeds = scout.w_feeds in
  let thunks =
    List.map
      (fun target () -> Loop (loop_trial ~ases ~relaxed_fraction ~seed target ()))
      relaxed
    @ [
        (fun () -> Tier1 (tier1_trial ~ases ~relaxed_fraction ~seed ~via_filtering:true ()));
        (fun () -> Tier1 (tier1_trial ~ases ~relaxed_fraction ~seed ~via_filtering:false ()));
      ]
  in
  let outcomes = Runner.run_trials ~jobs thunks in
  let relevant = ref 0 and single_ineffective = ref 0 and double_effective = ref 0 in
  let tier1_counts = ref [] in
  List.iter
    (function
      | Loop None -> ()
      | Loop (Some (survived, doubled)) ->
          incr relevant;
          if survived then incr single_ineffective;
          if doubled then incr double_effective
      | Tier1 n -> tier1_counts := n :: !tier1_counts)
    outcomes;
  let via_filter, via_clean =
    match List.rev !tier1_counts with
    | [ f; c ] -> (f, c)
    | _ -> assert false
  in
  {
    relaxed_ases = !relevant;
    single_poison_ineffective = !single_ineffective;
    double_poison_effective = !double_effective;
    tier1_poison_via_filter_reached = via_filter;
    tier1_poison_via_clean_reached = via_clean;
    feeds = List.length feeds;
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 7.1 poisoning anomalies (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "loop-relaxed transit ASes probed"; "-"; Stats.Table.cell_int r.relaxed_ases ];
      [
        "single poison shrugged off by them";
        "yes (AS286-style)";
        Printf.sprintf "%d/%d" r.single_poison_ineffective r.relaxed_ases;
      ];
      [
        "doubled ASN poisons them after all";
        "yes";
        Printf.sprintf "%d/%d" r.double_poison_effective r.single_poison_ineffective;
      ];
      [
        "tier-1 poison via filtering provider: feeds w/ route";
        "did not propagate widely";
        Printf.sprintf "%d/%d" r.tier1_poison_via_filter_reached r.feeds;
      ];
      [
        "tier-1 poison via clean provider: feeds w/ route";
        "76% of peers found paths";
        Printf.sprintf "%d/%d" r.tier1_poison_via_clean_reached r.feeds;
      ];
    ];
  [ t ]
