lib/sim/engine.ml: Array
