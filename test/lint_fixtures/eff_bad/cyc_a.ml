(* Half of an apparent cross-module cycle (the callgraph is syntactic;
   this need not compile as a program, only parse). The SCC
   {ping, pong} must reach a fixpoint and both members must inherit
   Clock from Clock_wrap. *)
let ping n = if n = 0 then Clock_wrap.now () else Cyc_b.pong (n - 1)
