lib/stats/stats.ml: Descriptive Ecdf Table
