lib/topology/as_graph.mli: Asn Format Ipv4 Net Relationship
