(** A fixed-size worker pool over OCaml 5 domains (stdlib only: [Domain],
    [Mutex], [Condition] — no domainslib).

    Built for the experiment harness: hundreds of independent,
    deterministic trial thunks that each own their PRNG, topology and
    simulation engine. The pool executes them on [jobs] worker domains
    and reassembles results in submission order, so a run with any number
    of jobs is bit-identical to a sequential run — parallelism changes
    only the wall clock, never the output. That contract holds only if
    the thunks share no mutable state, which is the caller's side of the
    bargain. *)

type t
(** A pool of worker domains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — one worker per available
    core. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] workers (default {!default_jobs}; values [< 1]
    are clamped to 1). With [jobs = 1] no domain is spawned at all and
    every submission runs inline on the caller — the legacy sequential
    path. *)

val jobs : t -> int
(** The worker count the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], distributing the
    calls over the pool's workers, and returns the results in the order
    of [xs] (NOT completion order). Blocks until the whole batch is done.

    If one or more applications raise, the exception of the {e earliest
    submitted} failing element is re-raised in the caller once the batch
    has drained — which failure surfaces does not depend on scheduling.

    Must be called from the domain that owns the pool, not from inside a
    task running on the pool. *)

val run_trials : t -> (unit -> 'a) list -> 'a list
(** [run_trials t thunks] is [map t (fun f -> f ()) thunks]: execute
    pre-built trial closures, results in submission order. *)

val shutdown : t -> unit
(** Join all workers. Outstanding tasks finish first; calling {!map}
    after shutdown raises [Invalid_argument]. Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
