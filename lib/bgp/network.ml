open Net
open Topology

(* Wire-level accounting (Obs): per-category update counters feed the
   --metrics summary, and each delivery / MRAI batch flush emits a trace
   event. Counters shard per domain, so concurrent trial networks never
   contend; the trace's "bgp.deliver" line count equals [m_delivered]
   (and {!message_count} summed over networks) by construction. *)
let m_delivered = Obs.Metrics.counter "bgp.delivered"
let m_announce_sent = Obs.Metrics.counter "bgp.updates.announce"
let m_withdraw_sent = Obs.Metrics.counter "bgp.updates.withdraw"
let m_mrai_rounds = Obs.Metrics.counter "bgp.mrai_rounds"

type update_record = {
  time : float;
  speaker : Asn.t;
  prefix : Prefix.t;
  route : Route.entry option;
}

type session = {
  mutable last_sent : float;  (** When we last put updates on this session. *)
  pending : Speaker.action Prefix.Table.t;
      (* Keyed on Prefix.hash/equal; the MRAI flush sorts the batch by
         Prefix.compare, so batch emission order is fixed by the prefixes
         themselves rather than by hash-bucket iteration order. *)
  mutable timer_armed : bool;
  jittered_mrai : float;
}

module Asn_pair_tbl = Hashtbl.Make (struct
  type t = Asn.t * Asn.t

  let equal (a1, b1) (a2, b2) = Asn.equal a1 a2 && Asn.equal b1 b2
  let hash (a, b) = ((Asn.hash a * 0x9E3779B1) lxor Asn.hash b) land max_int
end)

module Peer_prefix_tbl = Hashtbl.Make (struct
  type t = Asn.t * Prefix.t

  let equal (a1, p1) (a2, p2) = Asn.equal a1 a2 && Prefix.equal p1 p2
  let hash (a, p) = ((Asn.hash a * 0x9E3779B1) lxor Prefix.hash p) land max_int
end)

(* Per-shard collector slice: a speaker's loc-RIB-change callback writes
   only into its own shard's slice, so recording needs no cross-domain
   state. Legacy (unsharded) networks have exactly one slice, making the
   legacy path byte-identical to the pre-shard collector. *)
type collector_shard = {
  mutable crecords : update_record list;  (** newest first *)
  clatest : Route.entry option Peer_prefix_tbl.t;
      (** Latest recorded route per (peer, prefix), so [current_route]
          answers in O(1) instead of scanning the records. *)
}

type collector_state = {
  cname : string;
  cpeers : Asn.t list;
  peer_set : Asn.Set.t;
  subs : collector_shard array;  (** one slice per shard *)
  csync : unit -> unit;  (** catch shards up before a read *)
  cshard_of : Asn.t -> int;
  csharded : bool;
}

(* A cross-window BGP update: emitted into its source shard's outbox
   during a barrier window, exchanged at the barrier, and injected into
   the destination shard's engine in canonical order. *)
type boundary_msg = {
  b_arrival : float;
  b_from : Asn.t;
  b_to : Asn.t;
  b_src_shard : int;
  b_dst_shard : int;
  b_action : Speaker.action;
}

(* The per-shard slice of the world: its own event queue, path interner
   and delivery accounting. A shard's state is touched only by (a) its
   own window execution — possibly on a pool domain — and (b) the
   control domain while every shard is quiescent, so no two domains ever
   race on it. Legacy networks are a single shard whose engine IS the
   control engine. *)
type shard_state = {
  six : int;
  sengine : Sim.Engine.t;
  sstore : Path_store.t;
  mutable s_bgp_events : int;  (** BGP events queued in this shard's engine *)
  mutable s_delivered : int;
  mutable s_buckets : int array;
  mutable outbox : boundary_msg list;  (** reversed emission order *)
  mutable outbox_n : int;
}

type t = {
  engine : Sim.Engine.t;  (** the control engine *)
  graph : As_graph.t;
  speakers : Speaker.t Asn.Table.t;
  store : Path_store.t;
      (** The control-side path/announcement interner ({!announce} paths
          live here). In legacy mode it is also the single shard's store,
          shared by every speaker; in sharded mode each shard has its own
          interner and paths are re-interned on shard entry. *)
  delay_of : Asn.t -> Asn.t -> float;
  sessions : session Asn_pair_tbl.t;  (** keyed (from, to) *)
  owners : Asn.t Prefix.Table.t;
  mutable originations : (Asn.t -> As_path.t option) Prefix.Map.t;
      (** Administrative intent: the latest per-neighbor path function
          each originated prefix was announced with. Survives a router
          crash (the config outlives the loc-RIB) so {!restart_node} can
          re-originate from it. *)
  mutable owner_trie : Asn.t Prefix_trie.t;
  mutable link_faults : (from:Asn.t -> to_:Asn.t -> [ `Deliver | `Drop | `Duplicate ]) option;
  mutable collectors : collector_state list;
  shards : shard_state array;
  shard_ix : int Asn.Table.t;  (** AS -> shard index; empty in legacy mode *)
  mutable barrier : boundary_msg Shard.Barrier.t option;  (** None = legacy *)
  partition_cut : int;
}

let delivery_bucket_width = 1.0

let record_delivery sh time =
  let idx = int_of_float (time /. delivery_bucket_width) in
  let idx = if idx < 0 then 0 else idx in
  let cap = Array.length sh.s_buckets in
  if idx >= cap then begin
    let bigger = Array.make (max (idx + 1) (2 * cap)) 0 in
    Array.blit sh.s_buckets 0 bigger 0 cap;
    sh.s_buckets <- bigger
  end;
  sh.s_buckets.(idx) <- sh.s_buckets.(idx) + 1

(* Deterministic per-pair pseudo-random factor in [0,1): mix the ASN pair
   so runs are reproducible without threading a PRNG through the hot
   path. The mix is explicit arithmetic rather than the polymorphic
   [Hashtbl.hash] so delays cannot drift with the runtime's generic
   hash. *)
let pair_hash a b =
  let z = (Asn.to_int a * 0x9E3779B1) lxor (Asn.to_int b * 0x85EBCA6B) in
  let z = z lxor (z lsr 16) in
  float_of_int (z land 0xFFFF) /. 65536.0

let default_delay a b = 0.05 +. (0.2 *. pair_hash a b)

let engine t = t.engine
let graph t = t.graph

let speaker t asn =
  match Asn.Table.find_opt t.speakers asn with
  | Some sp -> sp
  | None -> invalid_arg (Printf.sprintf "Network: unknown %s" (Asn.to_string asn))

let path_store t = t.store
let shards t = Array.length t.shards
let is_sharded t = Option.is_some t.barrier
let cut_edges t = t.partition_cut

let shard_ix t asn =
  if Array.length t.shards = 1 then 0
  else begin
    match Asn.Table.find_opt t.shard_ix asn with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Network: unknown %s" (Asn.to_string asn))
  end

let shard_of_asn = shard_ix
let shard_for t asn = t.shards.(shard_ix t asn)

let barrier_count t =
  match t.barrier with Some b -> Shard.Barrier.barriers b | None -> 0

let barrier_history t =
  match t.barrier with Some b -> Shard.Barrier.history b | None -> []

let cut_message_count t =
  match t.barrier with Some b -> Shard.Barrier.cut_messages b | None -> 0

(* Catch every shard up to the control clock. Called before control-plane
   reads and writes; a no-op in legacy mode and whenever the frontier is
   already current. *)
let sync t =
  match t.barrier with
  | None -> ()
  | Some b -> Shard.Barrier.sync_all b ~now:(Sim.Engine.now t.engine)

let poke t = match t.barrier with None -> () | Some b -> Shard.Barrier.poke b

let session t a b =
  match Asn_pair_tbl.find_opt t.sessions (a, b) with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Network: no session %s -> %s" (Asn.to_string a) (Asn.to_string b))

let action_prefix = function
  | Speaker.Announce ann -> ann.Route.prefix
  | Speaker.Withdraw p -> p

(* Forward declaration to tie the delivery/emission knot. [sh] is always
   the shard owning the acting speaker: the destination's for [deliver],
   the sender's for [emit]/[schedule_delivery]. *)
let rec deliver t sh ~from ~to_ action =
  sh.s_delivered <- sh.s_delivered + 1;
  let now = Sim.Engine.now sh.sengine in
  record_delivery sh now;
  Obs.Metrics.incr m_delivered;
  if Obs.Trace.on () then begin
    let kind, prefix =
      match action with
      | Speaker.Announce ann -> ("announce", ann.Route.prefix)
      | Speaker.Withdraw p -> ("withdraw", p)
    in
    Obs.Trace.event ~ts:now ~span:"bgp.deliver"
      [
        ("from", Obs.Trace.Int (Asn.to_int from));
        ("to", Obs.Trace.Int (Asn.to_int to_));
        ("prefix", Obs.Trace.Str (Prefix.to_string prefix));
        ("kind", Obs.Trace.Str kind);
      ]
  end;
  let out = Speaker.receive (speaker t to_) ~now ~from action in
  emit_all t to_ out

and emit_all t from out =
  match out with
  | [] -> ()
  | _ ->
      let sh = shard_for t from in
      List.iter (fun (to_, action) -> emit t sh ~from ~to_ action) out

and emit t sh ~from ~to_ action =
  let s = session t from to_ in
  let now = Sim.Engine.now sh.sengine in
  let prefix = action_prefix action in
  if now -. s.last_sent >= s.jittered_mrai && Prefix.Table.length s.pending = 0 then begin
    s.last_sent <- now;
    schedule_delivery t sh ~from ~to_ action
  end
  else begin
    (* Coalesce: only the latest state per prefix matters. *)
    Prefix.Table.replace s.pending prefix action;
    if not s.timer_armed then begin
      s.timer_armed <- true;
      let fire_at = Float.max now (s.last_sent +. s.jittered_mrai) in
      sh.s_bgp_events <- sh.s_bgp_events + 1;
      Sim.Engine.schedule sh.sengine ~at:fire_at (fun () ->
          sh.s_bgp_events <- sh.s_bgp_events - 1;
          s.timer_armed <- false;
          s.last_sent <- Sim.Engine.now sh.sengine;
          let batch =
            Prefix.Table.fold (fun p a acc -> (p, a) :: acc) s.pending []
            |> List.sort (fun (p1, _) (p2, _) -> Prefix.compare p1 p2)
            |> List.map snd
          in
          Prefix.Table.reset s.pending;
          Obs.Metrics.incr m_mrai_rounds;
          if Obs.Trace.on () then
            Obs.Trace.event ~ts:(Sim.Engine.now sh.sengine) ~span:"bgp.mrai"
              [
                ("from", Obs.Trace.Int (Asn.to_int from));
                ("to", Obs.Trace.Int (Asn.to_int to_));
                ("batch", Obs.Trace.Int (List.length batch));
              ];
          List.iter (fun action -> schedule_delivery t sh ~from ~to_ action) batch)
    end
  end

and schedule_delivery t sh ~from ~to_ action =
  let delay = t.delay_of from to_ in
  (match action with
  | Speaker.Announce _ -> Obs.Metrics.incr m_announce_sent
  | Speaker.Withdraw _ -> Obs.Metrics.incr m_withdraw_sent);
  let send ~delay =
    match t.barrier with
    | None ->
        (* Legacy: direct scheduling on the (single, control) engine. *)
        sh.s_bgp_events <- sh.s_bgp_events + 1;
        Sim.Engine.schedule_after sh.sengine ~delay (fun () ->
            sh.s_bgp_events <- sh.s_bgp_events - 1;
            deliver t sh ~from ~to_ action)
    | Some _ ->
        (* Sharded: every delivery — intra-shard included — goes through
           the barrier outbox, so arrival order at each speaker is the
           canonical (time, src, dst, prefix) order whatever the
           partitioning. Engine sequence numbers differ across shard
           counts; the outbox ordering is what makes --shards K
           byte-identical for every K. *)
        sh.outbox <-
          {
            b_arrival = Sim.Engine.now sh.sengine +. delay;
            b_from = from;
            b_to = to_;
            b_src_shard = sh.six;
            b_dst_shard = shard_ix t to_;
            b_action = action;
          }
          :: sh.outbox;
        sh.outbox_n <- sh.outbox_n + 1
  in
  match t.link_faults with
  | None -> send ~delay
  | Some verdict -> begin
      (* Fault injection samples once per wire message, after the MRAI
         batching decided what goes out: a dropped update is silently
         lost (the far side keeps whatever it had), a duplicated one
         arrives twice with the copy trailing by half a propagation
         delay. *)
      match verdict ~from ~to_ with
      | `Deliver -> send ~delay
      | `Drop -> ()
      | `Duplicate ->
          send ~delay;
          send ~delay:(delay *. 1.5)
    end

(* Barrier injection: put one due message on its destination shard's
   queue. Runs on the control domain while shards are quiescent; the
   destination speaker re-interns the announcement into its own shard's
   store on receive ([Speaker.receive] -> [Path_store.intern_ann]). *)
let inject_boundary t msg =
  let sh = t.shards.(msg.b_dst_shard) in
  sh.s_bgp_events <- sh.s_bgp_events + 1;
  Sim.Engine.schedule sh.sengine ~at:msg.b_arrival (fun () ->
      sh.s_bgp_events <- sh.s_bgp_events - 1;
      deliver t sh ~from:msg.b_from ~to_:msg.b_to msg.b_action)

let create ~engine ~graph ?config_of ?(delay_of = default_delay) ?(mrai = 30.0)
    ?(fib_install_delay = 0.0) ?shards:shard_count ?shard_pool
    ?(record_barriers = false) () =
  let config_of =
    match config_of with
    | Some f -> f
    | None -> fun _ -> Policy.default
  in
  let ases = As_graph.as_list graph in
  let store = Path_store.create () in
  let shard_ix_tbl = Asn.Table.create 256 in
  let mk_shard six sengine sstore =
    {
      six;
      sengine;
      sstore;
      s_bgp_events = 0;
      s_delivered = 0;
      s_buckets = Array.make 1024 0;
      outbox = [];
      outbox_n = 0;
    }
  in
  let shard_states, partition_cut =
    match shard_count with
    | None -> ([| mk_shard 0 engine store |], 0)
    | Some k ->
        (* Deterministic partition: a fixed seed keeps the cut a pure
           function of (graph, k), which the --shards byte-equality
           tests rely on. *)
        let part = Partition.compute graph ~parts:(max 1 k) ~seed:0x51ED in
        let k = Partition.parts part in
        List.iter (fun a -> Asn.Table.replace shard_ix_tbl a (Partition.shard_of part a)) ases;
        ( Array.init k (fun i ->
              mk_shard i
                (Sim.Engine.create ~now:(Sim.Engine.now engine) ())
                (Path_store.create ())),
          Partition.cut_edges part )
  in
  let speakers = Asn.Table.create 256 in
  List.iter
    (fun asn ->
      let sstore =
        if Array.length shard_states = 1 then store
        else shard_states.(Asn.Table.find shard_ix_tbl asn).sstore
      in
      let sp =
        Speaker.create ~store:sstore ~asn ~config:(config_of asn)
          ~neighbors:(As_graph.neighbors graph asn) ()
      in
      Asn.Table.replace speakers asn sp)
    ases;
  let t =
    {
      engine;
      graph;
      speakers;
      store;
      delay_of;
      sessions = Asn_pair_tbl.create 1024;
      owners = Prefix.Table.create 16;
      originations = Prefix.Map.empty;
      owner_trie = Prefix_trie.empty;
      link_faults = None;
      collectors = [];
      shards = shard_states;
      shard_ix = shard_ix_tbl;
      barrier = None;
      partition_cut;
    }
  in
  (match shard_count with
  | None -> ()
  | Some _ ->
      (* The barrier lookahead is the minimum cross-link latency: any
         update emitted inside a window arrives at or after the window's
         end, which is what makes windows causally independent. *)
      let lookahead =
        List.fold_left
          (fun acc a ->
            List.fold_left
              (fun acc (b, _) -> Float.min acc (delay_of a b))
              acc (As_graph.neighbors graph a))
          infinity ases
      in
      let lookahead = if Float.is_finite lookahead then lookahead else 1.0 in
      if lookahead <= 0.0 then
        invalid_arg "Network: sharded mode needs a positive minimum link delay";
      let hooks =
        {
          Shard.Barrier.next_work = (fun i -> Sim.Engine.next_time t.shards.(i).sengine);
          advance = (fun i ~before -> Sim.Engine.run_before t.shards.(i).sengine ~before);
          drain =
            (fun i ->
              let sh = t.shards.(i) in
              let msgs = List.rev sh.outbox in
              sh.outbox <- [];
              sh.outbox_n <- 0;
              msgs);
          inject = (fun msg -> inject_boundary t msg);
          arrival = (fun msg -> msg.b_arrival);
          src_shard = (fun msg -> msg.b_src_shard);
          dst_shard = (fun msg -> msg.b_dst_shard);
          order =
            (fun m1 m2 ->
              match Asn.compare m1.b_from m2.b_from with
              | 0 -> begin
                  match Asn.compare m1.b_to m2.b_to with
                  | 0 -> Prefix.compare (action_prefix m1.b_action) (action_prefix m2.b_action)
                  | c -> c
                end
              | c -> c);
        }
      in
      let b =
        Shard.Barrier.create ~control:engine ~lookahead
          ~shards:(Array.length shard_states) ~record_history:record_barriers hooks
      in
      Shard.Barrier.set_pool b shard_pool;
      t.barrier <- Some b);
  (* Collector instrumentation: every speaker reports loc-RIB changes
     into its own shard's collector slice. *)
  Asn.Table.iter
    (fun asn sp ->
      let sh = shard_for t asn in
      Speaker.set_on_best_change sp (fun ~now prefix route ->
          List.iter
            (fun c ->
              if Asn.Set.mem asn c.peer_set then begin
                let slice = c.subs.(sh.six) in
                slice.crecords <- { time = now; speaker = asn; prefix; route } :: slice.crecords;
                Peer_prefix_tbl.replace slice.clatest (asn, prefix) route
              end)
            t.collectors);
      (* Damping reuse timers: when a speaker suppresses a route, wake it
         up to re-run its decision once the penalty has decayed. These
         are shard-local events, scheduled on the speaker's own engine. *)
      Speaker.set_reuse_scheduler sp (fun ~delay prefix ->
          sh.s_bgp_events <- sh.s_bgp_events + 1;
          Sim.Engine.schedule_after sh.sengine ~delay (fun () ->
              sh.s_bgp_events <- sh.s_bgp_events - 1;
              let out = Speaker.reevaluate sp ~now:(Sim.Engine.now sh.sengine) prefix in
              emit_all t asn out));
      if fib_install_delay > 0.0 then begin
        (* The data plane trails the control plane by a deterministic
           per-AS RIB-to-FIB install latency. *)
        let delay =
          fib_install_delay *. (0.25 +. (0.75 *. pair_hash asn asn))
        in
        Speaker.set_fib_commit_hook sp (fun prefix route ->
            Sim.Engine.schedule_after sh.sengine ~delay (fun () ->
                Speaker.install_fib sp prefix route))
      end)
    speakers;
  (* Session pacing state per directed adjacency. *)
  List.iter
    (fun a ->
      List.iter
        (fun (b, _) ->
          Asn_pair_tbl.replace t.sessions (a, b)
            {
              last_sent = neg_infinity;
              pending = Prefix.Table.create 4;
              timer_armed = false;
              jittered_mrai = mrai *. (0.75 +. (0.25 *. pair_hash a b));
            })
        (As_graph.neighbors graph a))
    ases;
  t

let set_shard_pool t pool =
  match t.barrier with
  | None -> ()
  | Some b -> Shard.Barrier.set_pool b pool

let announce t ~origin ~prefix ?per_neighbor () =
  sync t;
  let per_neighbor =
    match per_neighbor with
    | Some f -> f
    | None ->
        let plain = Path_store.intern_path t.store (As_path.plain ~origin) in
        fun _ -> Some plain
  in
  Prefix.Table.replace t.owners prefix origin;
  t.originations <- Prefix.Map.add prefix per_neighbor t.originations;
  t.owner_trie <- Prefix_trie.add prefix origin t.owner_trie;
  let out =
    Speaker.originate (speaker t origin) ~now:(Sim.Engine.now t.engine) ~prefix ~per_neighbor
  in
  emit_all t origin out;
  poke t

let withdraw t ~origin ~prefix =
  sync t;
  Prefix.Table.remove t.owners prefix;
  t.originations <- Prefix.Map.remove prefix t.originations;
  t.owner_trie <- Prefix_trie.remove prefix t.owner_trie;
  let out = Speaker.stop_originating (speaker t origin) ~now:(Sim.Engine.now t.engine) ~prefix in
  emit_all t origin out;
  poke t

let refresh t ~origin ~prefix =
  sync t;
  let out = Speaker.refresh_prefix (speaker t origin) ~prefix in
  emit_all t origin out;
  poke t

let owner t prefix = Prefix.Table.find_opt t.owners prefix
let owner_of_address t ip = Prefix_trie.lookup ip t.owner_trie

let best_route t asn prefix =
  sync t;
  Speaker.best (speaker t asn) prefix

let fib_lookup t asn ip =
  sync t;
  Speaker.fib_lookup (speaker t asn) ip

let bgp_busy t =
  let acc = ref 0 in
  Array.iter (fun sh -> acc := !acc + sh.s_bgp_events + sh.outbox_n) t.shards;
  (match t.barrier with Some b -> acc := !acc + Shard.Barrier.backlog b | None -> ());
  !acc

let run_until_quiet ?(timeout = 3600.0) t =
  poke t;
  let deadline = Sim.Engine.now t.engine +. timeout in
  let continue = ref true in
  while !continue do
    if bgp_busy t = 0 then continue := false
    else if Sim.Engine.now t.engine >= deadline then continue := false
    else if not (Sim.Engine.step t.engine) then continue := false
  done

let fail_link t ~a ~b =
  sync t;
  let now = Sim.Engine.now t.engine in
  let out_a = Speaker.session_down (speaker t a) ~now ~neighbor:b in
  let out_b = Speaker.session_down (speaker t b) ~now ~neighbor:a in
  emit_all t a out_a;
  emit_all t b out_b;
  poke t

let restore_link t ~a ~b =
  sync t;
  let now = Sim.Engine.now t.engine in
  let out_a = Speaker.session_up (speaker t a) ~now ~neighbor:b in
  let out_b = Speaker.session_up (speaker t b) ~now ~neighbor:a in
  emit_all t a out_a;
  emit_all t b out_b;
  poke t

let fail_node t asn =
  List.iter (fun (n, _) -> fail_link t ~a:asn ~b:n) (As_graph.neighbors t.graph asn)

let restore_node t asn =
  List.iter (fun (n, _) -> restore_link t ~a:asn ~b:n) (As_graph.neighbors t.graph asn)

let owned_prefixes t asn =
  Prefix.Table.fold (fun p o acc -> if Asn.equal o asn then p :: acc else acc) t.owners []
  |> List.sort Prefix.compare

(* A crash loses the whole loc-RIB: sessions drop (flushing the adj-RIBs
   on both sides) and local originations are forgotten. The
   administrative intent in [originations] survives, which is what
   {!restart_node} re-originates from — so a restarted origin re-announces
   whatever it was last configured to announce (a standing poison
   included), as a router reloading its config would. *)
let crash_node t asn =
  fail_node t asn;
  let sp = speaker t asn in
  let now = Sim.Engine.now t.engine in
  List.iter
    (fun prefix -> emit_all t asn (Speaker.stop_originating sp ~now ~prefix))
    (Speaker.originated sp);
  poke t

let reoriginate t asn =
  sync t;
  let sp = speaker t asn in
  let now = Sim.Engine.now t.engine in
  List.iter
    (fun prefix ->
      match Prefix.Map.find_opt prefix t.originations with
      | Some per_neighbor -> emit_all t asn (Speaker.originate sp ~now ~prefix ~per_neighbor)
      | None -> ())
    (owned_prefixes t asn);
  poke t

let restart_node t asn =
  restore_node t asn;
  reoriginate t asn

let set_link_faults t f = t.link_faults <- f

module Collector = struct
  type net = t
  type t = collector_state

  let attach (net : net) ~name ~peers =
    let k = Array.length net.shards in
    let c =
      {
        cname = name;
        cpeers = peers;
        peer_set = List.fold_left (fun s p -> Asn.Set.add p s) Asn.Set.empty peers;
        subs =
          Array.init k (fun _ ->
              { crecords = []; clatest = Peer_prefix_tbl.create 64 });
        csync = (fun () -> sync net);
        cshard_of = (fun asn -> shard_ix net asn);
        csharded = is_sharded net;
      }
    in
    net.collectors <- c :: net.collectors;
    c

  let name c = c.cname
  let peers c = c.cpeers

  (* Sharded logs merge the per-shard slices in the canonical
     (time, speaker) order — per-speaker record order is preserved by
     the stable sort (each speaker records into exactly one slice), so
     the merged log is a pure function of what happened, not of the
     partitioning. The legacy path is the original single-slice log. *)
  let log c =
    c.csync ();
    if not c.csharded then List.rev c.subs.(0).crecords
    else
      Array.to_list c.subs
      |> List.concat_map (fun s -> List.rev s.crecords)
      |> List.stable_sort (fun r1 r2 ->
             match Float.compare r1.time r2.time with
             | 0 -> Asn.compare r1.speaker r2.speaker
             | cmp -> cmp)

  let since c time = List.filter (fun r -> r.time >= time) (log c)

  let clear c =
    Array.iter
      (fun s ->
        s.crecords <- [];
        Peer_prefix_tbl.reset s.clatest)
      c.subs

  let current_route c ~peer ~prefix =
    c.csync ();
    match Peer_prefix_tbl.find_opt c.subs.(c.cshard_of peer).clatest (peer, prefix) with
    | Some route -> route
    | None -> None

  let route_view c ~peer ~prefix =
    c.csync ();
    Peer_prefix_tbl.find_opt c.subs.(c.cshard_of peer).clatest (peer, prefix)
end

let message_count t =
  sync t;
  Array.fold_left (fun acc sh -> acc + sh.s_delivered) 0 t.shards

let messages_between t ~since ~until =
  sync t;
  if until < since then 0
  else begin
    let w = delivery_bucket_width in
    let total = ref 0 in
    Array.iter
      (fun sh ->
        let lo = max 0 (int_of_float (since /. w)) in
        let hi = min (Array.length sh.s_buckets - 1) (int_of_float (until /. w)) in
        for i = lo to hi do
          total := !total + sh.s_buckets.(i)
        done)
      t.shards;
    !total
  end
