lib/bgp/community.ml: Format Int
