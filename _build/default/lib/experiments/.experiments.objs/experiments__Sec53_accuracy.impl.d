lib/experiments/sec53_accuracy.ml: Array Asn Dataplane Lifeguard List Measurement Net Outage_gen Printf Prng Scenarios Stats Workloads
