open Net
open Topology

type config = {
  session_flap_mtbf : float;
  session_flap_downtime : float;
  link_mtbf : float;
  link_mttr : float;
  router_mtbf : float;
  router_mttr : float;
  update_loss : float;
  update_dup : float;
}

let none =
  {
    session_flap_mtbf = 0.0;
    session_flap_downtime = 30.0;
    link_mtbf = 0.0;
    link_mttr = 600.0;
    router_mtbf = 0.0;
    router_mttr = 300.0;
    update_loss = 0.0;
    update_dup = 0.0;
  }

let validate c =
  if c.session_flap_mtbf < 0.0 then invalid_arg "Faults: negative session_flap_mtbf";
  if c.session_flap_mtbf > 0.0 && c.session_flap_downtime <= 0.0 then
    invalid_arg "Faults: session_flap_downtime must be positive when flaps are on";
  if c.link_mtbf < 0.0 then invalid_arg "Faults: negative link_mtbf";
  if c.link_mtbf > 0.0 && c.link_mttr <= 0.0 then
    invalid_arg "Faults: link_mttr must be positive when link failures are on";
  if c.router_mtbf < 0.0 then invalid_arg "Faults: negative router_mtbf";
  if c.router_mtbf > 0.0 && c.router_mttr <= 0.0 then
    invalid_arg "Faults: router_mttr must be positive when router crashes are on";
  if c.update_loss < 0.0 || c.update_loss > 1.0 then
    invalid_arg "Faults: update_loss must be in [0,1]";
  if c.update_dup < 0.0 || c.update_dup > 1.0 then
    invalid_arg "Faults: update_dup must be in [0,1]";
  if c.update_loss +. c.update_dup > 1.0 then
    invalid_arg "Faults: update_loss + update_dup must be <= 1";
  c

(* Intensity scaling for the fault study: rates scale linearly (MTBFs
   divide), repair times and the wire-fault probabilities stay put except
   that probabilities scale linearly too, clamped to keep the config
   valid. [scale c 0.] is fault-free. *)
let scale c factor =
  if factor < 0.0 then invalid_arg "Faults.scale: negative factor";
  if factor = 0.0 then { none with session_flap_downtime = c.session_flap_downtime }
  else begin
    let rate mtbf = if mtbf <= 0.0 then 0.0 else mtbf /. factor in
    let prob p = Float.min 1.0 (p *. factor) in
    let loss = prob c.update_loss in
    let dup = Float.min (prob c.update_dup) (1.0 -. loss) in
    {
      c with
      session_flap_mtbf = rate c.session_flap_mtbf;
      link_mtbf = rate c.link_mtbf;
      router_mtbf = rate c.router_mtbf;
      update_loss = loss;
      update_dup = dup;
    }
  end

(* Per-directed-link wire state for sharded networks. The verdict hook
   runs inside barrier windows — on whatever domain is advancing the
   sender's shard — so it cannot share a PRNG (or any cross-link mutable
   state) without making outcomes depend on global message order. Instead
   each directed link keeps its own message counter and the verdict is a
   pure hash of (seed, from, to, counter): the i-th message on a given
   link gets the same fate at any shard count and any pool width. Cells
   are fully pre-created before the hook is installed (the table is only
   ever read afterwards) and each is mutated only by the one domain
   advancing the sender's shard. *)
type wire_cell = {
  mutable wn : int;
  mutable wdropped : int;
  mutable wduplicated : int;
}

type t = {
  config : config;
  rng : Prng.t;
  net : Network.t;
  engine : Sim.Engine.t;
  down_links : (int, unit) Hashtbl.t;
      (** Links this injector currently holds down, keyed by the ordered
          ASN pair packed into one int (so the table stays int-keyed).
          Guards flap/failure processes sharing a link. *)
  down_routers : (Asn.t, unit) Hashtbl.t;
  wire_cells : (int, wire_cell) Hashtbl.t;  (** directed; sharded mode only *)
  mutable session_flaps : int;
  mutable link_failures : int;
  mutable router_crashes : int;
  mutable updates_dropped : int;
  mutable updates_duplicated : int;
}

let create ?(config = none) ~rng ~net () =
  let config = validate config in
  {
    config;
    rng;
    net;
    engine = Network.engine net;
    down_links = Hashtbl.create 16;
    down_routers = Hashtbl.create 8;
    wire_cells = Hashtbl.create 16;
    session_flaps = 0;
    link_failures = 0;
    router_crashes = 0;
    updates_dropped = 0;
    updates_duplicated = 0;
  }

let link_key a b =
  let ia = Asn.to_int a and ib = Asn.to_int b in
  if ia <= ib then (ia lsl 31) lor ib else (ib lsl 31) lor ia

let directed_key a b = (Asn.to_int a lsl 31) lor Asn.to_int b

(* Pure wire fate in [0,1): an explicit integer mix (murmur-style
   finalizer) of the run seed, the directed link and that link's message
   ordinal. No runtime [Hashtbl.hash], no shared PRNG — the value is a
   function of what the message is, not of when some other shard asked. *)
let wire_hash ~seed ~from ~to_ ~n =
  let z =
    seed
    lxor (Asn.to_int from * 0x9E3779B1)
    lxor (Asn.to_int to_ * 0x85EBCA6B)
    lxor (n * 0xC2B2AE35)
  in
  let z = (z lxor (z lsr 15)) * 0x2C1B3C6D in
  let z = (z lxor (z lsr 12)) * 0x297A2D39 in
  let z = z lxor (z lsr 15) in
  float_of_int (z land 0xFFFFFF) /. 16777216.0

let router_down t asn = Hashtbl.mem t.down_routers asn

(* One renewal process per link and fault class: exponential uptimes
   (mean [mtbf]) and downtimes (mean [mttr]). A draw that lands on a link
   already down — the other class got there first, or an endpoint router
   is crashed — is skipped and the process renews. The restore leg backs
   off when an endpoint router crashed mid-downtime: the router's own
   restart re-establishes the sessions. *)
let rec schedule_link_fault t ~mtbf ~mttr ~count ~a ~b ~until =
  let at = Sim.Engine.now t.engine +. Prng.Dist.exponential t.rng ~mean:mtbf in
  if at < until then
    Sim.Engine.schedule t.engine ~at (fun () ->
        let key = link_key a b in
        if Hashtbl.mem t.down_links key || router_down t a || router_down t b then
          schedule_link_fault t ~mtbf ~mttr ~count ~a ~b ~until
        else begin
          Hashtbl.replace t.down_links key ();
          count ();
          Network.fail_link t.net ~a ~b;
          let downtime = Prng.Dist.exponential t.rng ~mean:mttr in
          Sim.Engine.schedule_after t.engine ~delay:downtime (fun () ->
              if Hashtbl.mem t.down_links key then begin
                Hashtbl.remove t.down_links key;
                if not (router_down t a || router_down t b) then
                  Network.restore_link t.net ~a ~b
              end;
              schedule_link_fault t ~mtbf ~mttr ~count ~a ~b ~until)
        end)

(* Router crash/restart renewal: the crash drops every session and loses
   the loc-RIB; the restart re-establishes sessions toward up routers
   only (links held down by a link fault are handed back to this router,
   and links toward still-crashed neighbors stay down until that
   neighbor's own restart) and re-originates from administrative
   intent. *)
let rec schedule_router_fault t ~asn ~until =
  let at = Sim.Engine.now t.engine +. Prng.Dist.exponential t.rng ~mean:t.config.router_mtbf in
  if at < until then
    Sim.Engine.schedule t.engine ~at (fun () ->
        if router_down t asn then schedule_router_fault t ~asn ~until
        else begin
          Hashtbl.replace t.down_routers asn ();
          t.router_crashes <- t.router_crashes + 1;
          Network.crash_node t.net asn;
          let downtime = Prng.Dist.exponential t.rng ~mean:t.config.router_mttr in
          Sim.Engine.schedule_after t.engine ~delay:downtime (fun () ->
              Hashtbl.remove t.down_routers asn;
              List.iter
                (fun (n, _) ->
                  Hashtbl.remove t.down_links (link_key asn n);
                  if not (router_down t n) then Network.restore_link t.net ~a:asn ~b:n)
                (As_graph.neighbors (Network.graph t.net) asn);
              Network.reoriginate t.net asn;
              schedule_router_fault t ~asn ~until)
        end)

let sorted_links graph =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun (b, _) -> if Asn.to_int a < Asn.to_int b then Some (a, b) else None)
        (As_graph.neighbors graph a))
    (As_graph.as_list graph)
  |> List.sort (fun (a1, b1) (a2, b2) ->
         match Asn.compare a1 a2 with 0 -> Asn.compare b1 b2 | c -> c)

let start t ?(protect = []) ~until () =
  let graph = Network.graph t.net in
  let links = sorted_links graph in
  if t.config.session_flap_mtbf > 0.0 then
    List.iter
      (fun (a, b) ->
        schedule_link_fault t ~mtbf:t.config.session_flap_mtbf
          ~mttr:t.config.session_flap_downtime
          ~count:(fun () -> t.session_flaps <- t.session_flaps + 1)
          ~a ~b ~until)
      links;
  if t.config.link_mtbf > 0.0 then
    List.iter
      (fun (a, b) ->
        schedule_link_fault t ~mtbf:t.config.link_mtbf ~mttr:t.config.link_mttr
          ~count:(fun () -> t.link_failures <- t.link_failures + 1)
          ~a ~b ~until)
      links;
  if t.config.router_mtbf > 0.0 then begin
    let routers =
      List.filter
        (fun a -> not (List.exists (Asn.equal a) protect))
        (List.sort Asn.compare (As_graph.as_list graph))
    in
    List.iter (fun asn -> schedule_router_fault t ~asn ~until) routers
  end;
  if t.config.update_loss > 0.0 || t.config.update_dup > 0.0 then begin
    if Network.is_sharded t.net then begin
      (* Sharded: the verdict hook runs on shard domains, so draw one
         seed from the shared PRNG now (control domain, deterministic
         point in the stream) and decide each message's fate by pure
         hash over per-link counters — order-independent, hence
         byte-identical at any shard count and pool width. *)
      let seed = Prng.int t.rng 0x3FFFFFFF in
      List.iter
        (fun (a, b) ->
          Hashtbl.replace t.wire_cells (directed_key a b)
            { wn = 0; wdropped = 0; wduplicated = 0 };
          Hashtbl.replace t.wire_cells (directed_key b a)
            { wn = 0; wdropped = 0; wduplicated = 0 })
        links;
      Network.set_link_faults t.net
        (Some
           (fun ~from ~to_ ->
             match Hashtbl.find_opt t.wire_cells (directed_key from to_) with
             | None -> `Deliver
             | Some cell ->
                 let u = wire_hash ~seed ~from ~to_ ~n:cell.wn in
                 cell.wn <- cell.wn + 1;
                 if u < t.config.update_loss then begin
                   cell.wdropped <- cell.wdropped + 1;
                   `Drop
                 end
                 else if u < t.config.update_loss +. t.config.update_dup then begin
                   cell.wduplicated <- cell.wduplicated + 1;
                   `Duplicate
                 end
                 else `Deliver))
    end
    else
      Network.set_link_faults t.net
        (Some
           (fun ~from:_ ~to_:_ ->
             let u = Prng.float t.rng in
             if u < t.config.update_loss then begin
               t.updates_dropped <- t.updates_dropped + 1;
               `Drop
             end
             else if u < t.config.update_loss +. t.config.update_dup then begin
               t.updates_duplicated <- t.updates_duplicated + 1;
               `Duplicate
             end
             else `Deliver))
  end

let session_flap_count t = t.session_flaps
let link_failure_count t = t.link_failures
let router_crash_count t = t.router_crashes

(* Wire counters live in per-link cells in sharded mode; harvest runs on
   the control domain after the barrier has quiesced (summation is
   order-free either way). *)
let updates_dropped t =
  Hashtbl.fold (fun _ c acc -> acc + c.wdropped) t.wire_cells t.updates_dropped

let updates_duplicated t =
  Hashtbl.fold (fun _ c acc -> acc + c.wduplicated) t.wire_cells t.updates_duplicated
