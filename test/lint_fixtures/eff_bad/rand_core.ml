(* Direct Random use: LG-DET-RANDOM territory, the seed of the chain. *)
let draw n = Random.int n
