(* xoshiro256** with splitmix64 seeding. Self-contained so experiments do
   not depend on the stdlib Random's version-dependent stream. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let z = state +% 0x9E3779B97F4A7C15L in
  let z' = Int64.logxor z (Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z'' = Int64.logxor z' (Int64.shift_right_logical z' 27) *% 0x94D049BB133111EBL in
  (z, Int64.logxor z'' (Int64.shift_right_logical z'' 31))

let create ~seed =
  let s = ref (Int64.of_int seed) in
  let next () =
    let state, out = splitmix64 !s in
    s := state;
    out
  in
  let s0 = next () in
  let s1 = next () in
  let s2 = next () in
  let s3 = next () in
  (* All-zero state is the one invalid state for xoshiro; seed 0 cannot
     produce it through splitmix64, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let float t =
  (* 53 high-quality bits mapped to [0,1). *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x /. 9007199254740992.0

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the low bits to avoid modulo bias. *)
  let mask = Int64.of_int (max 1 n - 1) in
  let bits_needed =
    let rec go acc m = if m = 0 then acc else go (acc + 1) (m lsr 1) in
    go 0 (n - 1)
  in
  ignore mask;
  let rec draw () =
    let x =
      Int64.to_int
        (Int64.shift_right_logical (bits64 t) (64 - max 1 bits_needed))
    in
    if x < n then x else draw ()
  in
  if n = 1 then 0 else draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t ~p = float t < p

let range_float t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.range_float: lo > hi";
  lo +. ((hi -. lo) *. float t)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  let k = min k n in
  let copy = Array.copy arr in
  (* Partial Fisher–Yates: the first k slots end up being the sample. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k

module Dist = struct
  let exponential t ~mean =
    let u = 1.0 -. float t in
    -.mean *. log u

  let pareto t ~shape ~scale =
    let u = 1.0 -. float t in
    scale /. (u ** (1.0 /. shape))

  let normal t ~mu ~sigma =
    let u1 = 1.0 -. float t and u2 = float t in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    mu +. (sigma *. z)

  let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

  let weibull t ~shape ~scale =
    let u = 1.0 -. float t in
    scale *. ((-.log u) ** (1.0 /. shape))

  let mixture t components =
    let u = float t in
    let rec go acc = function
      | [] -> invalid_arg "Prng.Dist.mixture: empty or weights < 1"
      | [ (_, sampler) ] -> sampler t
      | (w, sampler) :: rest ->
          let acc = acc +. w in
          if u < acc then sampler t else go acc rest
    in
    go 0.0 components

  let zipf t ~n ~s =
    if n <= 0 then invalid_arg "Prng.Dist.zipf: n <= 0";
    (* Inverse-CDF over the (small) support; n is at most a few thousand in
       topology generation so the linear scan is fine. *)
    let norm = ref 0.0 in
    for k = 1 to n do
      norm := !norm +. (1.0 /. (Float.of_int k ** s))
    done;
    let target = float t *. !norm in
    let acc = ref 0.0 in
    let result = ref n in
    (try
       for k = 1 to n do
         acc := !acc +. (1.0 /. (Float.of_int k ** s));
         if !acc >= target then begin
           result := k;
           raise Exit
         end
       done
     with Exit -> ());
    !result
end
