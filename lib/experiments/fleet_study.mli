(** A day of continuous fleet operations at deployment scale: shard
    {!Fleet.Service} worlds across domains, pool repair latencies into a
    CDF and check the measured update stream against the paper's Table 2
    load model. The shard decomposition is a pure function of [targets]
    and [config.target_count] — never of [jobs] — so every rendered
    table is byte-identical for any worker count. *)

type result = {
  shards : int;  (** Share-nothing worlds the fleet decomposed into. *)
  targets : int;  (** Monitored networks fleet-wide. *)
  days : float;
  injected : int;
  drawn : int;
  unplaceable : int;
  detected : int;
  repaired : int;
  stood_down : int;
  gave_up : int;
  unfinished : int;
  poisons : int;
  unpoisons : int;
  time_to_repair : float list;  (** Pooled across worlds, ascending (s). *)
  monitor_pairs : int;
  monitor_skipped : int;
  probes_sent : int;
  budget_granted : int;
  budget_denied : int;
  isolation_retries : int;
  vp_crashes : int;
  lost_probes : int;
  stale_refreshes : int;
  collector_updates : int;
  injected_h15 : float;  (** Fleet-wide injected outages/day >= 15 min. *)
  measured_updates_per_day : float;
  predicted_updates_per_day : float;  (** Table 2 model, summed over worlds. *)
  reannounced : int;  (** Watchdog re-announcements of flushed poisons. *)
  rolled_back : int;  (** Poisons the watchdog withdrew as failed. *)
  breaker_trips : int;  (** Poison verdicts refused by an open breaker. *)
  session_flaps : int;  (** Injected control-plane faults, per class... *)
  link_failures : int;
  router_crashes : int;
  updates_dropped : int;
  updates_duplicated : int;  (** ...zero when [config.faults] is [none]. *)
}

val run :
  ?config:Fleet.Service.config -> ?targets:int -> ?jobs:int -> seed:int -> unit -> result
(** Run [ceil (targets / config.target_count)] independent service worlds
    (default 250 targets in worlds of [config.target_count]) and merge.
    Deterministic in [(config, targets, seed)]. *)

val ttr_cdf : result -> Stats.Ecdf.t option
(** Pooled detection-to-repair CDF; [None] when nothing was repaired. *)

val to_tables : result -> Stats.Table.t list
