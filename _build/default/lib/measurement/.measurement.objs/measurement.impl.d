lib/measurement/measurement.ml: Atlas Hubble Monitor Responsiveness Reverse_traceroute
