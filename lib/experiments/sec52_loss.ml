(** §5.2: packet loss on working paths during poison-induced convergence.

    The paper pinged ~300 PlanetLab sites from the poisoned prefix every
    ten seconds across each poisoning; after 60% of poisonings the loss
    rate during convergence was under 1%, after 98% under 2%, and only 2%
    of poisonings had any 10-second round above 10% loss.

    Reproduction notes. Two loss sources are modeled. {e Structural} loss
    is what the simulator's data plane actually drops: forwarding through
    an AS whose FIB lags its loc-RIB (RIB-to-FIB install latency), no
    route, or a transient loop. With the prepended baseline this is close
    to zero — the paper's central claim — because old paths keep
    forwarding while announcements converge. {e Ambient} loss models the
    low-grade background loss of real PlanetLab paths (the paper filtered
    obvious unrelated problems but the sub-1% floor remains); it is drawn
    per (site, poisoning) from a log-normal calibrated to a ~0.3% median.
    The table reports the combined rates (comparable to the paper) and
    the structural component alone. *)

open Net
open Workloads

type result = {
  poisons : int;
  loss_rates : float array;  (** Combined rate per poisoning. *)
  structural_rates : float array;  (** Simulator-attributable loss only. *)
  fraction_under_1pct : float;  (** Paper: 0.60. *)
  fraction_under_2pct : float;  (** Paper: 0.98. *)
  fraction_with_bad_round : float;  (** Rounds > 10% loss; paper: 0.02 of poisonings. *)
  max_structural : float;
}

let paper_under_1pct = 0.60
let paper_under_2pct = 0.98
let paper_bad_round = 0.02

let loss_during_poisoning mux rng ~samplers ~target =
  let bed = mux.Scenarios.bed in
  let net = bed.Scenarios.net in
  let engine = bed.Scenarios.engine in
  let prefix = Scenarios.production_prefix in
  let origin = mux.Scenarios.origin in
  let baseline = Bgp.As_path.prepended ~origin ~copies:3 in
  Bgp.Network.announce net ~origin ~prefix ~per_neighbor:(fun _ -> Some baseline) ();
  Bgp.Network.run_until_quiet net;
  Scenarios.settle bed ~seconds:120.0;
  let production_address = Prefix.nth_address prefix 1 in
  (* Per-site ambient loss for this poisoning: log-normal around 0.3%. *)
  let ambient =
    List.map
      (fun vp ->
        (vp, Float.min 0.03 (Prng.Dist.lognormal rng ~mu:(log 0.003) ~sigma:0.8)))
      samplers
  in
  let ambient_of vp = List.assoc vp ambient in
  let t0 = Sim.Engine.now engine in
  let horizon = 400.0 in
  let rounds : (float * Asn.t * bool * bool) list ref = ref [] in
  Sim.Engine.schedule_every engine ~every:10.0 ~until:(t0 +. horizon) (fun now ->
      List.iter
        (fun vp ->
          let delivered =
            Dataplane.Forward.delivers net bed.Scenarios.failures ~src:vp
              ~dst:production_address
          in
          let ambient_drop = Prng.bernoulli rng ~p:(ambient_of vp) in
          rounds := (now, vp, delivered, ambient_drop) :: !rounds)
        samplers;
      `Continue);
  Bgp.Network.Collector.clear mux.Scenarios.collector;
  let poisoned = Bgp.As_path.poisoned ~origin ~poison:target in
  Bgp.Network.announce net ~origin ~prefix ~per_neighbor:(fun _ -> Some poisoned) ();
  Bgp.Network.run_until_quiet net;
  Sim.Engine.run ~until:(t0 +. horizon +. 1.0) engine;
  let reports =
    Bgp.Convergence.analyze mux.Scenarios.collector ~event_time:t0 ~prefix
      ~affected:(fun _ -> false)
  in
  let t_converged =
    match Bgp.Convergence.global_convergence_time reports with
    | Some span when span > 0.0 ->
        List.fold_left
          (fun acc r -> Float.max acc r.Bgp.Convergence.last_update)
          t0 reports
    | Some _ | None -> t0 +. 30.0
  in
  (* Sites completely cut off by this poisoning are excluded, as in the
     paper. *)
  let cut_off vp =
    not (Dataplane.Forward.delivers net bed.Scenarios.failures ~src:vp ~dst:production_address)
  in
  let live = List.filter (fun vp -> not (cut_off vp)) samplers in
  let live_set = List.fold_left (fun s vp -> Asn.Set.add vp s) Asn.Set.empty live in
  let in_window =
    List.filter
      (fun (time, vp, _, _) ->
        time >= t0 && time <= t_converged +. 20.0 && Asn.Set.mem vp live_set)
      !rounds
  in
  let total = List.length in_window in
  let count pred = List.length (List.filter pred in_window) in
  let lost_struct = count (fun (_, _, delivered, _) -> not delivered) in
  let lost_any = count (fun (_, _, delivered, ambient) -> (not delivered) || ambient) in
  let rate n = if total = 0 then 0.0 else float_of_int n /. float_of_int total in
  (* Any single 10 s round with > 10% loss? *)
  let by_round = Hashtbl.create 64 in
  List.iter
    (fun (time, _, delivered, ambient) ->
      let key = int_of_float (time /. 10.0) in
      let lost0, total0 = Option.value ~default:(0, 0) (Hashtbl.find_opt by_round key) in
      let lost0 = if (not delivered) || ambient then lost0 + 1 else lost0 in
      Hashtbl.replace by_round key (lost0, total0 + 1))
    in_window;
  let bad_round =
    Hashtbl.fold
      (fun _ (l, t) acc -> acc || (t >= 10 && float_of_int l /. float_of_int t > 0.10))
      by_round false
  in
  (rate lost_any, rate lost_struct, bad_round)

(* Probing here targets only the production prefix (announced by the
   origin), so trial worlds need no infrastructure prefixes at all.
   Routers take a few seconds to push loc-RIB changes into their FIBs;
   that window is where structural convergence loss lives. *)
let build_mux ~ases ~seed =
  Scenarios.bgpmux ~ases ~fib_install_delay:6.0
    ~infrastructure:Scenarios.No_infrastructure ~seed ()

let run ?(ases = 318) ?(max_poisons = 20) ?(jobs = 1) ~seed () =
  (* Scout world: harvest the poisoning targets. *)
  let targets =
    let mux = build_mux ~ases ~seed in
    let net = mux.Scenarios.bed.Scenarios.net in
    Lifeguard.Remediate.announce_baseline net mux.Scenarios.plan;
    Bgp.Network.run_until_quiet net;
    let harvest = Scenarios.harvest_on_path_ases mux in
    let rng = Prng.create ~seed:(seed + 3) in
    let arr = Array.of_list harvest in
    Prng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 (min max_poisons (Array.length arr)))
  in
  (* One freshly built world per poisoning, each with its own PRNG keyed
     on (seed, trial index): trials share nothing and their outcomes
     don't depend on [jobs] or on each other. *)
  let trial idx target () =
    let mux = build_mux ~ases ~seed in
    let rng = Prng.create ~seed:(seed + 3 + (1009 * (idx + 1))) in
    (* The paper sampled ~300 PlanetLab sites; we sample every stub edge
       network in the topology. *)
    let samplers =
      match mux.Scenarios.bed.Scenarios.gen with
      | Some gen -> gen.Topology.Topo_gen.stub_list
      | None -> mux.Scenarios.bed.Scenarios.vantage_points
    in
    loss_during_poisoning mux rng ~samplers ~target
  in
  let outcomes = Runner.run_trials ~jobs (List.mapi trial targets) in
  let loss_rates = Array.of_list (List.map (fun (a, _, _) -> a) outcomes) in
  let structural_rates = Array.of_list (List.map (fun (_, s, _) -> s) outcomes) in
  let frac pred = Stats.Descriptive.fraction pred loss_rates in
  {
    poisons = List.length targets;
    loss_rates;
    structural_rates;
    fraction_under_1pct = frac (fun l -> l < 0.01);
    fraction_under_2pct = frac (fun l -> l < 0.02);
    fraction_with_bad_round =
      Stats.Descriptive.fraction_list (fun (_, _, bad) -> bad) outcomes;
    max_structural =
      (if Array.length structural_rates = 0 then 0.0
       else snd (Stats.Descriptive.min_max structural_rates));
  }

let to_tables r =
  let t =
    Stats.Table.create ~title:"Sec 5.2 loss during convergence (paper vs measured)"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  Stats.Table.add_rows t
    [
      [ "poisonings sampled"; "-"; Stats.Table.cell_int r.poisons ];
      [
        "loss < 1% of rounds";
        Stats.Table.cell_pct paper_under_1pct;
        Stats.Table.cell_pct r.fraction_under_1pct;
      ];
      [
        "loss < 2%";
        Stats.Table.cell_pct paper_under_2pct;
        Stats.Table.cell_pct r.fraction_under_2pct;
      ];
      [
        "any 10s round with >10% loss";
        Stats.Table.cell_pct paper_bad_round;
        Stats.Table.cell_pct r.fraction_with_bad_round;
      ];
      [
        "max convergence-attributable (structural) loss";
        "(not separable in the paper)";
        Stats.Table.cell_pct ~decimals:2 r.max_structural;
      ];
    ];
  [ t ]
