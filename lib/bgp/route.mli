(** Route representations: the announcement on the wire and the RIB entry
    a speaker stores after import. *)

open Net
open Topology

type announcement = {
  prefix : Prefix.t;
  path : As_path.t;  (** Nearest AS first; the sender's ASN is the head. *)
  communities : Community.t list;
  med : int option;  (** Multi-exit discriminator, if set. *)
}

val announcement :
  ?communities:Community.t list -> ?med:int -> prefix:Prefix.t -> path:As_path.t -> unit ->
  announcement

val announcement_equal : announcement -> announcement -> bool
(** Full attribute equality — used to suppress duplicate updates. O(1)
    ([==]) on announcements interned by one world's {!Path_store}. *)

val pp_announcement : Format.formatter -> announcement -> unit

type entry = {
  ann : announcement;
  neighbor : Asn.t;  (** The neighbor it was learned from (self if local). *)
  rel : Relationship.t;  (** What that neighbor is to us. *)
  local_pref : int;
  learned_at : float;  (** Simulation time of import. *)
  path_len : int;  (** Cached [As_path.length ann.path]. *)
  tiebreak : int;
      (** Cached per-speaker tiebreak rank ({!tiebreak_rank} of the
          importing speaker's salt; [0] when imported without a salt).
          Both caches exist because {!Decision.compare_entries} runs once
          per candidate per update — the hottest comparison in the
          simulator — and recomputing path length and hash rank there
          dominated the decision step. *)
}
(** An adj-RIB-in / loc-RIB entry. Build with {!make_entry} or
    {!local_entry} so the cached fields stay consistent with [ann]. *)

val tiebreak_rank : salt:int -> Asn.t -> int
(** The salted tiebreak rank used as the penultimate decision step: a
    16-bit hash of [(salt, neighbor)], standing in for the IGP-cost /
    router-id tiebreaks real routers apply. *)

val make_entry :
  ?salt:int ->
  ann:announcement ->
  neighbor:Asn.t ->
  rel:Relationship.t ->
  local_pref:int ->
  learned_at:float ->
  unit ->
  entry
(** Smart constructor: fills [path_len] and [tiebreak] from [ann],
    [salt] and [neighbor]. [salt] is the importing speaker's tiebreak
    salt (typically its ASN); omitting it gives rank [0], i.e. the
    plain lowest-neighbor-ASN final tiebreak. *)

val local_entry : prefix:Prefix.t -> self:Asn.t -> path:As_path.t -> now:float -> entry
(** The locally-originated route for a prefix: highest preference, treated
    as customer-learned for export purposes (exported to everyone). *)

val local_entry_of : ann:announcement -> self:Asn.t -> now:float -> entry
(** {!local_entry} from a pre-built (typically interned) announcement, so
    a speaker can reuse one shared local announcement across refreshes. *)

val is_local : entry -> bool
(** Whether the entry is a local origination (neighbor = self). *)

val pp_entry : Format.formatter -> entry -> unit
