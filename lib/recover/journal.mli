(** The write-ahead operations journal.

    Every externally-visible controller action goes through {!logged}:
    the typed record is serialized and handed to the sink {e before} the
    effect runs. The journal itself does no IO — the sink is injected
    (tests collect lines in memory; the CLI daemon appends to a file and
    flushes per line), mirroring how [Obs.Trace] owns no channel.

    Two modes:

    - {!create}: a fresh journal for a first run.
    - {!replaying}: recovery by deterministic re-execution. The resumed
      run re-executes from [t = 0] with the persisted lines as the
      expected prefix; every re-logged action is compared byte-for-byte
      against the prefix and a mismatch raises {!Divergence}. Once the
      prefix is exhausted the journal continues as a fresh one. Replay
      is what makes recovery exactly-once: an action whose record was
      persisted but whose effect was lost ({!Crash.After_write}) is
      re-derived — and re-applied exactly once — by re-execution, never
      blindly re-issued from the log.

    Crash injection ({!Crash.spec}) hooks the three append boundaries;
    the raised {!Crash.Crashed} unwinds out of the simulation loop and
    the harness resumes from the sinks' contents. *)

exception Divergence of { seq : int; expected : string option; got : string }

type t

val create : ?sink:(string -> unit) -> ?crash:Crash.spec -> unit -> t
(** Fresh journal. [sink] receives each persisted line (no newline), in
    order, exactly when it becomes durable. *)

val replaying : ?sink:(string -> unit) -> ?crash:Crash.spec -> expected:string list -> unit -> t
(** Recovery journal: verify the first [List.length expected] appends
    against [expected], then continue fresh. The sink receives every
    line again (the resumed daemon rewrites its journal file, which
    also truncates any torn final line). *)

val logged : t -> at:float -> Record.action -> effect:(unit -> unit) -> unit
(** [logged j ~at action ~effect] appends the record, then runs
    [effect] — the write-ahead ordering. Crash checks fire before the
    write, between write and effect, and after the effect.

    @raise Crash.Crashed at an armed crash point.
    @raise Divergence when a replayed append does not reproduce the
    persisted line. *)

val length : t -> int
(** Records appended so far (replayed + fresh). *)

val appended : t -> int
(** Fresh records past the replay prefix. *)

val replayed : t -> int
(** Records verified against the replay prefix so far. *)

val prefix_len : t -> int
(** Length of the replay prefix (0 for a fresh journal). *)

val replaying_now : t -> bool
(** Still inside the replay prefix. *)

val lines : t -> string list
(** Every persisted line, oldest first. *)

val records : t -> Record.t list
(** {!lines}, parsed. Raises [Invalid_argument] on a malformed line
    (cannot happen for lines this journal produced). *)

val parse_lines : string list -> (Record.t list, string) result
(** Parse a recovered journal (empty lines skipped). A malformed {e
    final} line is a torn write and is dropped; malformed interior
    lines are corruption and return [Error]. *)
