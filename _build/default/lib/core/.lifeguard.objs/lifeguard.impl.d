lib/core/lifeguard.ml: Decide Isolation Load_model Orchestrator Remediate
