lib/net/ipv4.mli: Format Map Set
