lib/measurement/hubble.mli: Asn Dataplane Net Sim
