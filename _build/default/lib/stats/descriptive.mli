(** Descriptive statistics over float samples.

    All functions operate on plain [float array] samples; none of them
    mutate their input. Percentile computations sort a private copy. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty sample. *)

val sum : float array -> float
(** Sum of the sample. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator). Requires length >= 2. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_max : float array -> float * float
(** Smallest and largest element. Raises on an empty sample. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], with linear interpolation
    between order statistics. Raises on an empty sample. *)

val median : float array -> float
(** 50th percentile. *)

val fraction : ('a -> bool) -> 'a array -> float
(** [fraction pred xs] is the share of elements satisfying [pred]; [0.] on
    an empty array. *)

val fraction_list : ('a -> bool) -> 'a list -> float
(** List analogue of {!fraction}. *)
